//! Batched, data-parallel readout: classify many shots across all five
//! qubits concurrently, with zero heap allocations on the hot path.
//!
//! The per-shot path ([`crate::KlinqSystem::measure`]) exists for mid-circuit
//! latency; evaluation and serving workloads instead see *throughput* —
//! thousands of buffered shots that all need discriminating. This module
//! chunks a shot batch over the persistent worker pool of the vendored
//! rayon work-alike and classifies each chunk with **cache-blocked fused
//! kernels over a structure-of-arrays block**: four shots at a time are
//! gathered into a lane-interleaved [`TraceBatch`], the fused front end
//! ([`klinq_dsp::FeaturePipeline::extract_batch_into`]) runs averaging,
//! matched filter and normalization while the block is L1-resident, and
//! the chunk's feature rows then go through one register-blocked GEMM per
//! qubit ([`klinq_nn::Fnn::logits_batch_with`] over
//! `Matrix::gemm_block`) instead of one network traversal per shot.
//!
//! Every buffer the chunk path touches lives in a per-worker
//! [`ShotScratch`] (the pool keeps its threads — and therefore these warm
//! buffers — alive across batches), so after warmup a batch classifies
//! with no allocator traffic at all. Scheduling never changes results:
//! outputs are written back in shot order and every prediction is
//! bitwise-identical to sequential [`KlinqDiscriminator::measure`] calls —
//! the fused kernels keep each lane's scalar summation order (see
//! `klinq_dsp::averaging` for the order policy), and the GEMM replays the
//! exact single-sample order (see `Dense::forward_infer_into`). Ragged
//! blocks (mixed trace lengths) fall back to the identical scalar path.
//!
//! The bit-accurate Q16.16 datapath is batched the same way:
//! [`BatchDiscriminator::classify_shots_hw`] gathers the same SoA blocks
//! and runs the fused fixed-point kernel
//! ([`klinq_fpga::FpgaDiscriminator::infer_batch_with`]) through
//! per-worker [`klinq_fpga::HwBatchScratch`] buffers — bitwise-identical
//! to `measure_hw` because every fixed-point accumulator wraps.
//!
//! [`crate::KlinqSystem::evaluate`] routes through this engine, and the
//! `inference` criterion bench reports its shots/sec as the repo's
//! serving-throughput trajectory (see `BENCH_inference.json`).

use crate::backend::Backend;
use crate::discriminator::KlinqDiscriminator;
use crate::eval::{assignment_fidelity, FidelityReport};
use klinq_dsp::TraceBatch;
use klinq_fpga::{HwBatchScratch, HwScratch};
use klinq_nn::{BatchScratch, InferenceScratch, Matrix};
use klinq_sim::{ReadoutDataset, Shot};
use rayon::prelude::*;
use std::cell::RefCell;

/// The per-shot output of the five independent discriminators,
/// qubit-ordered.
pub type ShotStates = [bool; 5];

/// Per-worker reusable buffers for the batched hot paths.
///
/// Workers of the persistent pool each own one (thread-local), so the
/// float and Q16.16 classification paths perform zero heap allocations
/// once the buffers have warmed up to the batch shape.
#[derive(Debug, Default)]
pub struct ShotScratch {
    /// One shot's feature row (per-shot float path).
    features: Vec<f32>,
    /// Network ping-pong buffers for the per-shot float path.
    nn: InferenceScratch,
    /// Packed feature rows of one chunk (GEMM path).
    x: Matrix,
    /// Network ping-pong matrices for the chunked GEMM path.
    batch: BatchScratch,
    /// Lane-interleaved SoA gather of one four-shot block (both backends).
    traces: TraceBatch,
    /// Interleaved intermediate features of the fused float front end.
    fused: Vec<f32>,
    /// Fixed-point buffers for the per-shot Q16.16 path.
    hw: HwScratch,
    /// Lane-interleaved fixed-point buffers for the batched Q16.16 path.
    hw_batch: HwBatchScratch,
}

impl ShotScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// The calling thread's scratch. Pool workers persist across batches,
    /// so these warm buffers are reused by every subsequent call.
    static SCRATCH: RefCell<ShotScratch> = RefCell::new(ShotScratch::new());
}

/// A batched front end over five per-qubit discriminators.
///
/// Borrow-only: construction is free, so building one per batch is fine.
#[derive(Debug, Clone, Copy)]
pub struct BatchDiscriminator<'a> {
    discriminators: &'a [KlinqDiscriminator],
    chunk_size: Option<usize>,
}

impl<'a> BatchDiscriminator<'a> {
    /// Wraps the five qubit-ordered discriminators of a trained system.
    ///
    /// # Panics
    ///
    /// Panics if `discriminators` does not hold exactly five entries
    /// (the device model of the paper) or if they are not qubit-ordered.
    pub fn new(discriminators: &'a [KlinqDiscriminator]) -> Self {
        assert_eq!(
            discriminators.len(),
            5,
            "BatchDiscriminator expects the five-qubit system"
        );
        for (idx, d) in discriminators.iter().enumerate() {
            assert_eq!(d.qubit(), idx, "discriminators must be qubit-ordered");
        }
        Self {
            discriminators,
            chunk_size: None,
        }
    }

    /// Overrides the scheduling chunk size (shots per parallel task).
    ///
    /// Purely a scheduling knob: results are identical for every chunk
    /// size. The default targets a few chunks per worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// The chunk size that will be used for a batch of `n` shots.
    pub fn chunk_size_for(&self, n: usize) -> usize {
        if let Some(size) = self.chunk_size {
            return size;
        }
        let workers = rayon::current_num_threads();
        // Aim for ~4 chunks per worker so stragglers rebalance, with a
        // floor that keeps per-chunk overhead negligible for tiny batches
        // and a cap that bounds the per-worker scratch (the thread-local
        // buffers warm to one chunk's feature matrix and persist with the
        // pool) while keeping the GEMM working set cache-friendly.
        (n / (workers * 4)).clamp(8, 4096)
    }

    /// Classifies one shot on all five qubits through the calling
    /// thread's reusable scratch (zero allocations after warmup), on the
    /// chosen backend.
    ///
    /// Bitwise-identical to per-qubit
    /// [`KlinqDiscriminator::measure_on`] calls.
    pub fn classify_shot_on(&self, backend: Backend, shot: &Shot) -> ShotStates {
        SCRATCH.with(|s| self.classify_shot_on_with(backend, shot, &mut s.borrow_mut()))
    }

    /// [`Self::classify_shot_on`] with an explicit scratch (for callers
    /// managing their own buffers).
    pub fn classify_shot_on_with(
        &self,
        backend: Backend,
        shot: &Shot,
        scratch: &mut ShotScratch,
    ) -> ShotStates {
        let mut states = [false; 5];
        for (qb, d) in self.discriminators.iter().enumerate() {
            let t = &shot.traces[qb];
            states[qb] = match backend {
                Backend::Float => {
                    let student = d.student();
                    scratch.features.clear();
                    scratch.features.resize(student.pipeline.input_dim(), 0.0);
                    student.pipeline.extract_into(&t.i, &t.q, &mut scratch.features);
                    student.net.predict_with(&scratch.features, &mut scratch.nn)
                }
                Backend::Hardware => d.hardware().infer_with(&t.i, &t.q, &mut scratch.hw),
            };
        }
        states
    }

    /// Classifies one shot on the float path.
    ///
    /// Compatibility wrapper over [`Self::classify_shot_on`].
    #[inline]
    pub fn classify_shot(&self, shot: &Shot) -> ShotStates {
        self.classify_shot_on(Backend::Float, shot)
    }

    /// [`Self::classify_shot`] with an explicit scratch.
    ///
    /// Compatibility wrapper over [`Self::classify_shot_on_with`].
    #[inline]
    pub fn classify_shot_with(&self, shot: &Shot, scratch: &mut ShotScratch) -> ShotStates {
        self.classify_shot_on_with(Backend::Float, shot, scratch)
    }

    /// Classifies one shot through the bit-accurate Q16.16 datapath.
    ///
    /// Compatibility wrapper over [`Self::classify_shot_on`].
    #[inline]
    pub fn classify_shot_hw(&self, shot: &Shot) -> ShotStates {
        self.classify_shot_on(Backend::Hardware, shot)
    }

    /// [`Self::classify_shot_hw`] with an explicit scratch.
    ///
    /// Compatibility wrapper over [`Self::classify_shot_on_with`].
    #[inline]
    pub fn classify_shot_hw_with(&self, shot: &Shot, scratch: &mut ShotScratch) -> ShotStates {
        self.classify_shot_on_with(Backend::Hardware, shot, scratch)
    }

    /// Classifies one chunk with the fused SoA kernels and a batched
    /// forward pass per qubit: four shots at a time are gathered into the
    /// scratch's lane-interleaved [`TraceBatch`], the fused front end
    /// extracts their feature rows while the block is cache-resident, and
    /// the packed rows run through that qubit's student in a single
    /// register-blocked GEMM. Ragged blocks and the chunk tail take the
    /// bitwise-identical scalar path.
    fn classify_chunk_into(&self, shots: &[Shot], out: &mut [ShotStates], scratch: &mut ShotScratch) {
        debug_assert_eq!(shots.len(), out.len());
        for (qb, d) in self.discriminators.iter().enumerate() {
            let student = d.student();
            scratch.x.resize(shots.len(), student.pipeline.input_dim());
            let mut rows = scratch.x.iter_rows_mut();
            let mut quads = shots.chunks_exact(4);
            for quad in &mut quads {
                let t = [&quad[0].traces[qb], &quad[1].traces[qb], &quad[2].traces[qb], &quad[3].traces[qb]];
                let traces = [(&*t[0].i, &*t[0].q), (&*t[1].i, &*t[1].q), (&*t[2].i, &*t[2].q), (&*t[3].i, &*t[3].q)];
                let mut rs: [&mut [f32]; 4] = std::array::from_fn(|_| {
                    rows.next().expect("matrix rows match the shot count")
                });
                if scratch.traces.gather(traces) {
                    student
                        .pipeline
                        .extract_batch_into(&scratch.traces, rs, &mut scratch.fused);
                } else {
                    // Ragged block: per-shot extraction, identical results.
                    for ((i, q), row) in traces.iter().zip(rs.iter_mut()) {
                        student.pipeline.extract_into(i, q, row);
                    }
                }
            }
            for (shot, row) in quads.remainder().iter().zip(rows) {
                let t = &shot.traces[qb];
                student.pipeline.extract_into(&t.i, &t.q, row);
            }
            let logits = student.net.logits_batch_with(&scratch.x, &mut scratch.batch);
            for (states, &logit) in out.iter_mut().zip(logits) {
                states[qb] = klinq_nn::Fnn::decide(logit);
            }
        }
    }

    /// The Q16.16 twin of [`Self::classify_chunk_into`]: the same SoA
    /// gather feeds the fused fixed-point kernel
    /// ([`klinq_fpga::FpgaDiscriminator::infer_batch_with`]) four shots at
    /// a time; ragged blocks and the chunk tail take the scalar
    /// [`klinq_fpga::FpgaDiscriminator::infer_with`] path (bitwise
    /// identical — every fixed-point accumulator wraps).
    fn classify_chunk_hw_into(&self, shots: &[Shot], out: &mut [ShotStates], scratch: &mut ShotScratch) {
        debug_assert_eq!(shots.len(), out.len());
        for (qb, d) in self.discriminators.iter().enumerate() {
            let hw = d.hardware();
            let mut quads = shots.chunks_exact(4);
            let mut out_quads = out.chunks_exact_mut(4);
            for (quad, out_quad) in (&mut quads).zip(&mut out_quads) {
                let t = [&quad[0].traces[qb], &quad[1].traces[qb], &quad[2].traces[qb], &quad[3].traces[qb]];
                let traces = [(&*t[0].i, &*t[0].q), (&*t[1].i, &*t[1].q), (&*t[2].i, &*t[2].q), (&*t[3].i, &*t[3].q)];
                if scratch.traces.gather(traces) {
                    let details = hw.infer_batch_with(&scratch.traces, &mut scratch.hw_batch);
                    for (states, detail) in out_quad.iter_mut().zip(details) {
                        states[qb] = detail.excited;
                    }
                } else {
                    for ((i, q), states) in traces.iter().zip(out_quad.iter_mut()) {
                        states[qb] = hw.infer_with(i, q, &mut scratch.hw);
                    }
                }
            }
            for (shot, states) in quads.remainder().iter().zip(out_quads.into_remainder()) {
                let t = &shot.traces[qb];
                states[qb] = hw.infer_with(&t.i, &t.q, &mut scratch.hw);
            }
        }
    }

    /// Shared parallel driver: chunks the batch over the pool and lets
    /// `per_chunk` fill each output chunk through the worker's scratch.
    /// Writeback is index-ordered, so output `i` is always shot `i`.
    fn classify_batch<F>(&self, shots: &[Shot], per_chunk: F) -> Vec<ShotStates>
    where
        F: Fn(&[Shot], &mut [ShotStates], &mut ShotScratch) + Sync,
    {
        if shots.is_empty() {
            return Vec::new();
        }
        let chunk = self.chunk_size_for(shots.len());
        let mut out = vec![[false; 5]; shots.len()];
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, out_chunk)| {
                let start = ci * chunk;
                let in_chunk = &shots[start..start + out_chunk.len()];
                SCRATCH.with(|s| per_chunk(in_chunk, out_chunk, &mut s.borrow_mut()));
            });
        out
    }

    /// Classifies a batch of shots in parallel on the chosen backend —
    /// the single generic batch entry point.
    ///
    /// Output index `i` is always shot `i`'s states, regardless of thread
    /// scheduling, and every value is bitwise-identical to
    /// [`Self::classify_shot_on`] (and therefore to sequential
    /// [`KlinqDiscriminator::measure_on`]) on that shot. Both backends
    /// gather four-shot SoA blocks into per-worker scratch and run the
    /// fused cache-blocked kernels — the float backend finishing each
    /// chunk with one register-blocked GEMM per qubit, the Q16.16 backend
    /// with the fused fixed-point datapath — allocation-free after warmup.
    pub fn classify_shots_on(&self, backend: Backend, shots: &[Shot]) -> Vec<ShotStates> {
        match backend {
            Backend::Float => self.classify_batch(shots, |chunk, out, scratch| {
                self.classify_chunk_into(chunk, out, scratch);
            }),
            Backend::Hardware => self.classify_batch(shots, |chunk, out, scratch| {
                self.classify_chunk_hw_into(chunk, out, scratch);
            }),
        }
    }

    /// Classifies a batch of shots in parallel (float pipeline).
    ///
    /// Compatibility wrapper over [`Self::classify_shots_on`].
    #[inline]
    pub fn classify_shots(&self, shots: &[Shot]) -> Vec<ShotStates> {
        self.classify_shots_on(Backend::Float, shots)
    }

    /// Classifies a batch of shots in parallel through the bit-accurate
    /// Q16.16 datapath.
    ///
    /// Compatibility wrapper over [`Self::classify_shots_on`].
    #[inline]
    pub fn classify_shots_hw(&self, shots: &[Shot]) -> Vec<ShotStates> {
        self.classify_shots_on(Backend::Hardware, shots)
    }

    /// Classifies every shot of a dataset in parallel on the chosen
    /// backend.
    pub fn classify_dataset_on(&self, backend: Backend, data: &ReadoutDataset) -> Vec<ShotStates> {
        self.classify_shots_on(backend, data.shots())
    }

    /// Classifies every shot of a dataset in parallel (float pipeline).
    ///
    /// Compatibility wrapper over [`Self::classify_dataset_on`].
    #[inline]
    pub fn classify_dataset(&self, data: &ReadoutDataset) -> Vec<ShotStates> {
        self.classify_dataset_on(Backend::Float, data)
    }

    /// Per-qubit assignment fidelities of a prediction set over a dataset.
    fn report_from(predictions: &[ShotStates], data: &ReadoutDataset) -> FidelityReport {
        let fidelities = (0..5)
            .map(|qb| {
                let labels = data.qubit_labels(qb);
                let preds: Vec<bool> = predictions.iter().map(|s| s[qb]).collect();
                assignment_fidelity(&preds, &labels)
            })
            .collect();
        FidelityReport::new(fidelities)
    }

    /// Batched assignment-fidelity evaluation over a dataset at the full
    /// trace length, on the chosen backend.
    ///
    /// Produces exactly the same report as evaluating each qubit with
    /// sequential [`KlinqDiscriminator::measure_on`] calls — the
    /// parallelism never changes a prediction, only the wall-clock cost.
    pub fn evaluate_on(&self, backend: Backend, data: &ReadoutDataset) -> FidelityReport {
        Self::report_from(&self.classify_dataset_on(backend, data), data)
    }

    /// Float-path batched evaluation.
    ///
    /// Compatibility wrapper over [`Self::evaluate_on`].
    #[inline]
    pub fn evaluate(&self, data: &ReadoutDataset) -> FidelityReport {
        self.evaluate_on(Backend::Float, data)
    }

    /// Batched evaluation through the Q16.16 datapath.
    ///
    /// Compatibility wrapper over [`Self::evaluate_on`].
    #[inline]
    pub fn evaluate_hw(&self, data: &ReadoutDataset) -> FidelityReport {
        self.evaluate_on(Backend::Hardware, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_system;

    #[test]
    fn batch_matches_sequential_bitwise() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        let shots = sys.test_data().shots();
        let batched = batch.classify_shots(shots);
        assert_eq!(batched.len(), shots.len());
        for (shot, states) in shots.iter().zip(&batched) {
            // The GEMM-chunked result, the scratch per-shot path, and the
            // sequential allocating reference must all agree exactly.
            assert_eq!(*states, batch.classify_shot(shot));
            for (qb, (state, t)) in states.iter().zip(&shot.traces).enumerate() {
                let sequential = sys.measure(qb, &t.i, &t.q);
                assert_eq!(*state, sequential, "qubit {qb} diverged");
            }
        }
    }

    #[test]
    fn hw_batch_matches_sequential_measure_hw() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        let shots = sys.test_data().shots();
        let batched = batch.classify_shots_hw(shots);
        assert_eq!(batched.len(), shots.len());
        for (shot, states) in shots.iter().zip(&batched) {
            assert_eq!(*states, batch.classify_shot_hw(shot));
            for (qb, (state, t)) in states.iter().zip(&shot.traces).enumerate() {
                let sequential = sys.discriminator(qb).measure_hw(&t.i, &t.q);
                assert_eq!(*state, sequential, "qubit {qb} hw diverged");
            }
        }
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let sys = smoke_system();
        let shots = sys.test_data().shots();
        let reference = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);
        let reference_hw = BatchDiscriminator::new(sys.discriminators()).classify_shots_hw(shots);
        for chunk_size in [1, 3, 7, 64, shots.len() + 1] {
            let batch = BatchDiscriminator::new(sys.discriminators()).with_chunk_size(chunk_size);
            assert_eq!(batch.classify_shots(shots), reference, "chunk size {chunk_size} diverged");
            assert_eq!(
                batch.classify_shots_hw(shots),
                reference_hw,
                "chunk size {chunk_size} diverged (hw)"
            );
        }
    }

    #[test]
    fn batched_evaluate_matches_sequential_evaluate() {
        let sys = smoke_system();
        // `KlinqSystem::evaluate` routes through the batch engine; the
        // sequential reference is `evaluate_at` at the design duration.
        let batched = sys.evaluate();
        let sequential = sys.evaluate_at(sys.test_data().samples());
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batched_evaluate_hw_matches_per_qubit_fidelity_hw() {
        let sys = smoke_system();
        // `KlinqSystem::evaluate_hw` routes through the batch engine; the
        // sequential reference is the per-discriminator hw fidelity.
        let batched = sys.evaluate_hw();
        for qb in 0..5 {
            let sequential = sys.discriminator(qb).fidelity_hw(sys.test_data());
            assert_eq!(batched.qubit(qb), sequential, "qubit {qb} hw fidelity diverged");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        for backend in Backend::ALL {
            assert!(batch.classify_shots_on(backend, &[]).is_empty());
        }
        assert!(batch.classify_shots(&[]).is_empty());
        assert!(batch.classify_shots_hw(&[]).is_empty());
    }

    #[test]
    fn generic_backend_paths_match_legacy_wrappers_bitwise() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        let shots = sys.test_data().shots();
        // Batch level: the generic entry point and the legacy twins must
        // produce identical vectors on both backends.
        assert_eq!(batch.classify_shots_on(Backend::Float, shots), batch.classify_shots(shots));
        assert_eq!(
            batch.classify_shots_on(Backend::Hardware, shots),
            batch.classify_shots_hw(shots)
        );
        // Shot level, plus the sequential per-discriminator reference.
        for shot in shots.iter().take(48) {
            for backend in Backend::ALL {
                let states = batch.classify_shot_on(backend, shot);
                for (qb, t) in shot.traces.iter().enumerate() {
                    assert_eq!(
                        states[qb],
                        sys.discriminator(qb).measure_on(backend, &t.i, &t.q),
                        "qubit {qb} diverged on {backend}"
                    );
                }
            }
        }
        // Report level.
        assert_eq!(batch.evaluate_on(Backend::Float, sys.test_data()), batch.evaluate(sys.test_data()));
        assert_eq!(
            batch.evaluate_on(Backend::Hardware, sys.test_data()),
            batch.evaluate_hw(sys.test_data())
        );
    }

    #[test]
    #[should_panic(expected = "five-qubit system")]
    fn wrong_discriminator_count_rejected() {
        let sys = smoke_system();
        let _ = BatchDiscriminator::new(&sys.discriminators()[..3]);
    }

    #[test]
    fn ragged_trace_lengths_fall_back_to_the_scalar_path_bitwise() {
        let sys = smoke_system();
        // Chunk size 6 ⇒ one gathered quad plus a 2-shot tail per chunk.
        let batch = BatchDiscriminator::new(sys.discriminators()).with_chunk_size(6);
        // Truncate every third shot so some SoA gathers see mixed trace
        // lengths and must reject the block (the fallback is exact, so
        // predictions still match the per-shot path everywhere).
        let mut shots: Vec<Shot> = sys.test_data().shots()[..26].to_vec();
        let keep = sys.test_data().samples() * 3 / 4;
        for shot in shots.iter_mut().skip(1).step_by(3) {
            for t in &mut shot.traces {
                t.i.truncate(keep);
                t.q.truncate(keep);
            }
        }
        for backend in Backend::ALL {
            let batched = batch.classify_shots_on(backend, &shots);
            for (idx, (shot, states)) in shots.iter().zip(&batched).enumerate() {
                assert_eq!(
                    *states,
                    batch.classify_shot_on(backend, shot),
                    "shot {idx} diverged on {backend}"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]

        #[test]
        fn any_chunk_size_is_bitwise_identical_to_per_shot(chunk in 1usize..512) {
            // The fused kernels see `chunk`-row blocks whose SoA-quad /
            // scalar-tail split depends on the chunk size; none of it may
            // ever change a prediction, on either backend.
            let sys = smoke_system();
            let batch = BatchDiscriminator::new(sys.discriminators()).with_chunk_size(chunk);
            let shots = sys.test_data().shots();
            let chunked = batch.classify_shots(shots);
            for (shot, states) in shots.iter().zip(&chunked) {
                proptest::prop_assert_eq!(*states, batch.classify_shot(shot));
            }
            // The Q16.16 path shares the gather logic; spot-check a prefix
            // that still exercises quads and tails.
            let hw_shots = &shots[..67.min(shots.len())];
            let hw = batch.classify_shots_on(Backend::Hardware, hw_shots);
            for (shot, states) in hw_shots.iter().zip(&hw) {
                proptest::prop_assert_eq!(*states, batch.classify_shot_hw(shot));
            }
        }
    }
}
