//! Batched, data-parallel readout: classify many shots across all five
//! qubits concurrently.
//!
//! The per-shot path ([`KlinqSystem::measure`]) exists for mid-circuit
//! latency; evaluation and serving workloads instead see *throughput* —
//! thousands of buffered shots that all need discriminating. This module
//! chunks a shot batch over a scoped thread pool (the vendored
//! rayon work-alike) while keeping the output ordering deterministic and
//! bitwise-identical to sequential [`KlinqDiscriminator::measure`] calls:
//! every shot is classified by exactly the same float pipeline, only the
//! scheduling changes.
//!
//! [`KlinqSystem::evaluate`] routes through this engine, and the
//! `inference` criterion bench reports its shots/sec as the repo's first
//! serving-throughput baseline.

use crate::discriminator::KlinqDiscriminator;
use crate::eval::{assignment_fidelity, FidelityReport};
use klinq_sim::{ReadoutDataset, Shot};
use rayon::prelude::*;

/// The per-shot output of the five independent discriminators,
/// qubit-ordered.
pub type ShotStates = [bool; 5];

/// A batched front end over five per-qubit discriminators.
///
/// Borrow-only: construction is free, so building one per batch is fine.
#[derive(Debug, Clone, Copy)]
pub struct BatchDiscriminator<'a> {
    discriminators: &'a [KlinqDiscriminator],
    chunk_size: Option<usize>,
}

impl<'a> BatchDiscriminator<'a> {
    /// Wraps the five qubit-ordered discriminators of a trained system.
    ///
    /// # Panics
    ///
    /// Panics if `discriminators` does not hold exactly five entries
    /// (the device model of the paper) or if they are not qubit-ordered.
    pub fn new(discriminators: &'a [KlinqDiscriminator]) -> Self {
        assert_eq!(
            discriminators.len(),
            5,
            "BatchDiscriminator expects the five-qubit system"
        );
        for (idx, d) in discriminators.iter().enumerate() {
            assert_eq!(d.qubit(), idx, "discriminators must be qubit-ordered");
        }
        Self {
            discriminators,
            chunk_size: None,
        }
    }

    /// Overrides the scheduling chunk size (shots per parallel task).
    ///
    /// Purely a scheduling knob: results are identical for every chunk
    /// size. The default targets a few chunks per worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// The chunk size that will be used for a batch of `n` shots.
    pub fn chunk_size_for(&self, n: usize) -> usize {
        if let Some(size) = self.chunk_size {
            return size;
        }
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Aim for ~4 chunks per worker so stragglers rebalance, with a
        // floor that keeps per-chunk overhead negligible for tiny batches.
        (n / (workers * 4)).max(8)
    }

    /// Classifies one shot on all five qubits (the sequential reference
    /// path the batched path must match exactly).
    pub fn classify_shot(&self, shot: &Shot) -> ShotStates {
        let mut states = [false; 5];
        for (qb, d) in self.discriminators.iter().enumerate() {
            let t = &shot.traces[qb];
            states[qb] = d.measure(&t.i, &t.q);
        }
        states
    }

    /// Classifies a batch of shots in parallel.
    ///
    /// Output index `i` is always shot `i`'s states, regardless of thread
    /// scheduling, and every value is bitwise-identical to
    /// [`Self::classify_shot`] on that shot.
    pub fn classify_shots(&self, shots: &[Shot]) -> Vec<ShotStates> {
        if shots.is_empty() {
            return Vec::new();
        }
        let chunk = self.chunk_size_for(shots.len());
        let per_chunk: Vec<Vec<ShotStates>> = shots
            .par_chunks(chunk)
            .map(|chunk| chunk.iter().map(|shot| self.classify_shot(shot)).collect())
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// Classifies every shot of a dataset in parallel.
    pub fn classify_dataset(&self, data: &ReadoutDataset) -> Vec<ShotStates> {
        self.classify_shots(data.shots())
    }

    /// Batched assignment-fidelity evaluation over a dataset at the full
    /// trace length.
    ///
    /// Produces exactly the same report as evaluating each qubit with
    /// sequential `measure` calls — the parallelism never changes a
    /// prediction, only the wall-clock cost.
    pub fn evaluate(&self, data: &ReadoutDataset) -> FidelityReport {
        let predictions = self.classify_dataset(data);
        let fidelities = (0..5)
            .map(|qb| {
                let labels = data.qubit_labels(qb);
                let preds: Vec<bool> = predictions.iter().map(|s| s[qb]).collect();
                assignment_fidelity(&preds, &labels)
            })
            .collect();
        FidelityReport::new(fidelities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::KlinqSystem;
    use crate::experiments::ExperimentConfig;
    use std::sync::OnceLock;

    /// One shared smoke system: every test here only needs `&`-access,
    /// and training is by far the dominant cost of this module's suite.
    fn smoke_system() -> &'static KlinqSystem {
        static SYS: OnceLock<KlinqSystem> = OnceLock::new();
        SYS.get_or_init(|| KlinqSystem::train(&ExperimentConfig::smoke()).unwrap())
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        let shots = sys.test_data().shots();
        let batched = batch.classify_shots(shots);
        assert_eq!(batched.len(), shots.len());
        for (shot, states) in shots.iter().zip(&batched) {
            for (qb, (state, t)) in states.iter().zip(&shot.traces).enumerate() {
                let sequential = sys.measure(qb, &t.i, &t.q);
                assert_eq!(*state, sequential, "qubit {qb} diverged");
            }
        }
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let sys = smoke_system();
        let shots = sys.test_data().shots();
        let reference = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);
        for chunk_size in [1, 3, 7, 64, shots.len() + 1] {
            let chunked = BatchDiscriminator::new(sys.discriminators())
                .with_chunk_size(chunk_size)
                .classify_shots(shots);
            assert_eq!(chunked, reference, "chunk size {chunk_size} diverged");
        }
    }

    #[test]
    fn batched_evaluate_matches_sequential_evaluate() {
        let sys = smoke_system();
        // `KlinqSystem::evaluate` routes through the batch engine; the
        // sequential reference is `evaluate_at` at the design duration.
        let batched = sys.evaluate();
        let sequential = sys.evaluate_at(sys.test_data().samples());
        assert_eq!(batched, sequential);
    }

    #[test]
    fn empty_batch_is_empty() {
        let sys = smoke_system();
        let batch = BatchDiscriminator::new(sys.discriminators());
        assert!(batch.classify_shots(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "five-qubit system")]
    fn wrong_discriminator_count_rejected() {
        let sys = smoke_system();
        let _ = BatchDiscriminator::new(&sys.discriminators()[..3]);
    }
}
