//! Fidelity metrics: per-qubit assignment fidelity, F5Q and F4Q.

use klinq_dsp::geometric_mean;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-qubit readout fidelities plus the paper's geometric-mean summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    fidelities: Vec<f64>,
}

impl FidelityReport {
    /// Wraps per-qubit fidelities.
    ///
    /// # Panics
    ///
    /// Panics if `fidelities` is empty or any value is outside `[0, 1]`.
    pub fn new(fidelities: Vec<f64>) -> Self {
        assert!(!fidelities.is_empty(), "fidelity report needs at least one qubit");
        assert!(
            fidelities.iter().all(|f| (0.0..=1.0).contains(f)),
            "fidelities must lie in [0, 1]: {fidelities:?}"
        );
        Self { fidelities }
    }

    /// Per-qubit fidelities, qubit-ordered.
    pub fn per_qubit(&self) -> &[f64] {
        &self.fidelities
    }

    /// One qubit's fidelity.
    ///
    /// # Panics
    ///
    /// Panics if `qb` is out of range.
    pub fn qubit(&self, qb: usize) -> f64 {
        self.fidelities[qb]
    }

    /// Geometric mean over all qubits (the paper's `F5Q` for five qubits).
    pub fn geometric_mean(&self) -> f64 {
        geometric_mean(&self.fidelities)
    }

    /// Geometric mean excluding one qubit (the paper's `F4Q` excludes the
    /// noisy qubit 2, index 1).
    ///
    /// # Panics
    ///
    /// Panics if `exclude` is out of range or only one qubit exists.
    pub fn geometric_mean_excluding(&self, exclude: usize) -> f64 {
        assert!(exclude < self.fidelities.len(), "exclude index out of range");
        assert!(self.fidelities.len() > 1, "cannot exclude the only qubit");
        let rest: Vec<f64> = self
            .fidelities
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != exclude)
            .map(|(_, &f)| f)
            .collect();
        geometric_mean(&rest)
    }

    /// The paper's `F4Q`: geometric mean excluding qubit 2 (index 1).
    pub fn f4q(&self) -> f64 {
        self.geometric_mean_excluding(1)
    }
}

impl fmt::Display for FidelityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fid) in self.fidelities.iter().enumerate() {
            write!(f, "Q{}: {:.3}  ", i + 1, fid)?;
        }
        write!(f, "F{}Q: {:.3}", self.fidelities.len(), self.geometric_mean())?;
        if self.fidelities.len() == 5 {
            write!(f, "  F4Q: {:.3}", self.f4q())?;
        }
        Ok(())
    }
}

/// Counts correct binary predictions against labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn assignment_fidelity(predictions: &[bool], labels: &[f32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "prediction/label mismatch");
    assert!(!predictions.is_empty(), "fidelity of an empty set");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| p == (y == 1.0))
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_paper_table1_means() {
        let r = FidelityReport::new(vec![0.968, 0.748, 0.929, 0.934, 0.959]);
        assert!((r.geometric_mean() - 0.904).abs() < 0.002);
        assert!((r.f4q() - 0.947).abs() < 0.002);
        assert_eq!(r.qubit(1), 0.748);
        assert_eq!(r.per_qubit().len(), 5);
    }

    #[test]
    fn display_contains_all_qubits() {
        let r = FidelityReport::new(vec![0.9, 0.8, 0.7, 0.95, 0.85]);
        let s = r.to_string();
        assert!(s.contains("Q1") && s.contains("Q5") && s.contains("F5Q") && s.contains("F4Q"));
    }

    #[test]
    fn assignment_fidelity_reference() {
        let f = assignment_fidelity(&[true, false, true, true], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(f, 0.75);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_report_rejected() {
        let _ = FidelityReport::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn out_of_range_fidelity_rejected() {
        let _ = FidelityReport::new(vec![1.2]);
    }

    #[test]
    #[should_panic(expected = "prediction/label mismatch")]
    fn fidelity_length_checked() {
        let _ = assignment_fidelity(&[true], &[1.0, 0.0]);
    }
}
