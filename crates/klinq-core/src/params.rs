//! Parameter accounting and network-compression-rate reporting (Fig. 5).

use crate::student::StudentArch;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameter counts and compression rates of the paper's architectures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Teacher parameters per qubit (1000→1000→500→250→1 with biases).
    pub teacher_params_per_qubit: usize,
    /// Teacher parameters over five qubits.
    pub teacher_params_total: usize,
    /// The total the paper's Fig. 5 reports (8 130 005; differs from the
    /// fully-biased count by 1 000 per qubit, i.e. the first hidden
    /// layer's biases).
    pub paper_teacher_total: usize,
    /// FNN-A parameters (one qubit).
    pub fnn_a_params: usize,
    /// FNN-B parameters (one qubit).
    pub fnn_b_params: usize,
    /// Fig. 5's FNN-A group total (qubits 1, 4, 5).
    pub fnn_a_group_total: usize,
    /// Fig. 5's FNN-B group total (qubits 2, 3).
    pub fnn_b_group_total: usize,
    /// All five student networks.
    pub student_total: usize,
    /// Network compression rate vs the five teacher networks.
    pub ncr_vs_teacher: f64,
    /// Compression vs a single baseline FNN (the paper's 1.63 M).
    pub ncr_vs_baseline: f64,
}

impl CompressionReport {
    /// Computes the report for the paper's architectures.
    pub fn paper_architectures() -> Self {
        // 1000→1000→500→250→1 with biases everywhere.
        let teacher_per_qubit = 1000 * 1000 + 1000 + 1000 * 500 + 500 + 500 * 250 + 250 + 250 + 1;
        let fnn_a = StudentArch::FnnA.num_params();
        let fnn_b = StudentArch::FnnB.num_params();
        let student_total = 3 * fnn_a + 2 * fnn_b;
        let teacher_total = 5 * teacher_per_qubit;
        Self {
            teacher_params_per_qubit: teacher_per_qubit,
            teacher_params_total: teacher_total,
            paper_teacher_total: 8_130_005,
            fnn_a_params: fnn_a,
            fnn_b_params: fnn_b,
            fnn_a_group_total: 3 * fnn_a,
            fnn_b_group_total: 2 * fnn_b,
            student_total,
            ncr_vs_teacher: 1.0 - student_total as f64 / teacher_total as f64,
            ncr_vs_baseline: 1.0 - student_total as f64 / teacher_per_qubit as f64,
        }
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Teacher NNs (5 qubits): {} parameters", self.teacher_params_total)?;
        writeln!(f, "  (paper Fig. 5 reports {})", self.paper_teacher_total)?;
        writeln!(
            f,
            "KLiNQ FNN-B group (Q2, Q3): {} parameters ({} per qubit)",
            self.fnn_b_group_total, self.fnn_b_params
        )?;
        writeln!(
            f,
            "KLiNQ FNN-A group (Q1, Q4, Q5): {} parameters ({} per qubit)",
            self.fnn_a_group_total, self.fnn_a_params
        )?;
        writeln!(f, "All students: {} parameters", self.student_total)?;
        writeln!(
            f,
            "NCR vs teacher NNs: {:.2}% (paper: 99.89%)",
            100.0 * self.ncr_vs_teacher
        )?;
        write!(
            f,
            "Reduction vs one baseline FNN: {:.2}% (paper: 98.93%)",
            100.0 * self.ncr_vs_baseline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_counts_reproduced_exactly() {
        let r = CompressionReport::paper_architectures();
        // Fig. 5's bar values.
        assert_eq!(r.fnn_a_group_total, 1_971);
        assert_eq!(r.fnn_b_group_total, 6_754);
        // Our fully-biased teacher is within 0.07% of the paper's total.
        assert_eq!(r.teacher_params_per_qubit, 1_627_001);
        assert_eq!(r.teacher_params_total, 8_135_005);
        let rel = (r.teacher_params_total as f64 - r.paper_teacher_total as f64)
            / r.paper_teacher_total as f64;
        assert!(rel.abs() < 0.001, "teacher total off by {rel}");
    }

    #[test]
    fn ncr_matches_paper() {
        let r = CompressionReport::paper_architectures();
        // Paper: 99.89% vs teachers.
        assert!((r.ncr_vs_teacher - 0.9989).abs() < 0.0002, "{}", r.ncr_vs_teacher);
        // Paper reports 98.93% vs the 1.63M baseline; our accounting of
        // all five students vs one baseline gives 99.46% — the ordering
        // and magnitude ("≈99% reduction") hold.
        assert!(r.ncr_vs_baseline > 0.98, "{}", r.ncr_vs_baseline);
    }

    #[test]
    fn display_mentions_both_rates() {
        let s = CompressionReport::paper_architectures().to_string();
        assert!(s.contains("99.89%"), "{s}");
        assert!(s.contains("NCR"), "{s}");
    }
}
