//! Student network architectures and their qubit assignment.

use klinq_dsp::FeatureSpec;
use klinq_nn::{Activation, Fnn, FnnBuilder};
use serde::{Deserialize, Serialize};

/// The two student architectures of the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StudentArch {
    /// 31 → 16 → 8 → 1 for the high-SNR qubits (1, 4, 5): 64 ns averaging
    /// intervals suffice. 657 parameters.
    FnnA,
    /// 201 → 16 → 8 → 1 for the noisy qubits (2, 3): 10 ns averaging
    /// intervals preserve the temporal detail they need. 3 377 parameters.
    FnnB,
}

impl StudentArch {
    /// The paper's architecture assignment for qubit index `qb` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `qb >= 5`.
    pub fn for_qubit(qb: usize) -> Self {
        match qb {
            0 | 3 | 4 => Self::FnnA,
            1 | 2 => Self::FnnB,
            _ => panic!("qubit index {qb} out of range for the five-qubit device"),
        }
    }

    /// The feature layout this architecture consumes.
    pub fn feature_spec(&self) -> FeatureSpec {
        match self {
            Self::FnnA => FeatureSpec::fnn_a(),
            Self::FnnB => FeatureSpec::fnn_b(),
        }
    }

    /// Network input dimension (31 or 201).
    pub fn input_dim(&self) -> usize {
        self.feature_spec().input_dim()
    }

    /// Builds an untrained student with this architecture.
    pub fn build(&self, seed: u64) -> Fnn {
        FnnBuilder::new(self.input_dim())
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(seed)
            .build()
    }

    /// Parameter count of this architecture.
    pub fn num_params(&self) -> usize {
        let d = self.input_dim();
        d * 16 + 16 + 16 * 8 + 8 + 8 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_matches_paper() {
        assert_eq!(StudentArch::for_qubit(0), StudentArch::FnnA);
        assert_eq!(StudentArch::for_qubit(1), StudentArch::FnnB);
        assert_eq!(StudentArch::for_qubit(2), StudentArch::FnnB);
        assert_eq!(StudentArch::for_qubit(3), StudentArch::FnnA);
        assert_eq!(StudentArch::for_qubit(4), StudentArch::FnnA);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_rejects_sixth_qubit() {
        let _ = StudentArch::for_qubit(5);
    }

    #[test]
    fn parameter_counts_match_fig5() {
        assert_eq!(StudentArch::FnnA.num_params(), 657);
        assert_eq!(StudentArch::FnnB.num_params(), 3377);
        // And the built networks agree with the closed form.
        assert_eq!(StudentArch::FnnA.build(0).num_params(), 657);
        assert_eq!(StudentArch::FnnB.build(0).num_params(), 3377);
    }

    #[test]
    fn input_dims() {
        assert_eq!(StudentArch::FnnA.input_dim(), 31);
        assert_eq!(StudentArch::FnnB.input_dim(), 201);
    }
}
