//! Comparator systems from the paper's evaluation.
//!
//! - **Baseline FNN** (Lienhard et al. \[3\]): the large raw-trace FNN. Its
//!   per-qubit incarnation is architecturally identical to the KLiNQ
//!   teacher, so [`crate::teacher::Teacher`] plays this role directly and
//!   no separate implementation is needed.
//! - **HERQULES** (Maurya et al., ISCA'23): per-qubit matched-filter
//!   feature banks feeding a compact FNN ([`herqules`]), adapted to the
//!   independent-readout scenario exactly as the paper does for its
//!   comparison.
//! - **Quantized FNN** (Gautam et al. \[10\]): post-training quantization of
//!   the baseline network without distillation ([`quantized`]) — the
//!   "sacrifices accuracy" comparison point.
//! - **Matched filter + threshold** ([`mf_threshold`]): the classical
//!   discriminator, used as a sanity floor and for simulator calibration
//!   checks.

pub mod herqules;
pub mod mf_threshold;
pub mod quantized;

pub use herqules::{HerqulesConfig, HerqulesDiscriminator};
pub use mf_threshold::MfThreshold;
pub use quantized::quantize_network;
