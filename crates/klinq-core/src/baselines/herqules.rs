//! HERQULES-style baseline: matched-filter feature banks + compact FNN.
//!
//! HERQULES (Maurya et al., ISCA'23) improves on raw-trace FNNs by feeding
//! hardware-efficient matched-filter outputs into a small network. For the
//! paper's Table I the authors re-implement it for *independent* per-qubit
//! readout, where it loses its cross-qubit features and falls behind KLiNQ
//! by about a percent. This module reproduces that adapted baseline:
//! per-qubit time-windowed matched-filter outputs (I and Q), normalized,
//! into a 16/8 FNN.

use crate::error::KlinqError;
use crate::eval::assignment_fidelity;
use klinq_dsp::{IqMatchedFilter, VecNormalizer};
use klinq_nn::train::{train_supervised, Dataset, TrainConfig, TrainReport};
use klinq_nn::{Activation, Fnn, FnnBuilder};
use klinq_sim::ReadoutDataset;
use serde::{Deserialize, Serialize};

/// HERQULES baseline hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HerqulesConfig {
    /// Matched-filter windows per quadrature (feature count is
    /// `2 × windows`).
    pub windows: usize,
    /// Network training settings.
    pub train: TrainConfig,
    /// Weight-init seed.
    pub init_seed: u64,
}

impl Default for HerqulesConfig {
    fn default() -> Self {
        Self {
            windows: 8,
            train: TrainConfig {
                epochs: 60,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainConfig::default()
            },
            init_seed: 23,
        }
    }
}

/// A trained per-qubit HERQULES discriminator.
#[derive(Debug, Clone, PartialEq)]
pub struct HerqulesDiscriminator {
    qubit: usize,
    windows: usize,
    filter: IqMatchedFilter,
    normalizer: VecNormalizer,
    net: Fnn,
    report: TrainReport,
}

impl HerqulesDiscriminator {
    /// Trains the baseline for qubit `qb`.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if filter training or dataset assembly
    /// fails.
    pub fn train(
        config: &HerqulesConfig,
        data: &ReadoutDataset,
        qb: usize,
    ) -> Result<Self, KlinqError> {
        Self::train_at(config, data, qb, data.samples())
    }

    /// Trains for a shortened readout duration (first `samples` of each
    /// trace), for the duration-sweep comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if filter training or dataset assembly
    /// fails.
    pub fn train_at(
        config: &HerqulesConfig,
        data: &ReadoutDataset,
        qb: usize,
        samples: usize,
    ) -> Result<Self, KlinqError> {
        let samples = samples.min(data.samples());
        let (ground, excited) = data.class_split(qb);
        let ground = crate::distill::truncate_pairs(ground, samples);
        let excited = crate::distill::truncate_pairs(excited, samples);
        let filter = IqMatchedFilter::train(&ground, &excited)
            .map_err(klinq_dsp::feature::FitPipelineError::from)?;
        let raw_rows: Vec<Vec<f32>> = data
            .qubit_pairs(qb)
            .iter()
            .map(|&(i, q)| {
                filter
                    .apply_windowed(&i[..samples], &q[..samples], config.windows)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = raw_rows.iter().map(|r| r.as_slice()).collect();
        let normalizer =
            VecNormalizer::fit(&refs).map_err(klinq_dsp::feature::FitPipelineError::from)?;
        let rows: Vec<Vec<f32>> = raw_rows.iter().map(|r| normalizer.apply(r)).collect();
        let dataset = Dataset::from_rows(&rows, &data.qubit_labels(qb))?;
        let mut net = FnnBuilder::new(2 * config.windows)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(config.init_seed + qb as u64)
            .build();
        let report = train_supervised(&mut net, &dataset, &config.train);
        Ok(Self {
            qubit: qb,
            windows: config.windows,
            filter,
            normalizer,
            net,
            report,
        })
    }

    /// Which qubit this discriminator reads.
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// Parameter count of the compact network.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }

    /// Training summary.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Reads the qubit from a raw trace (prefix-tolerant).
    ///
    /// # Panics
    ///
    /// Panics if the trace prefix cannot fill the feature windows.
    pub fn measure(&self, i: &[f32], q: &[f32]) -> bool {
        let raw: Vec<f32> = self
            .filter
            .apply_windowed_prefix(i, q, self.windows)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        self.net.predict(&self.normalizer.apply(&raw))
    }

    /// Assignment fidelity over the first `samples` of each trace.
    pub fn fidelity_at(&self, data: &ReadoutDataset, samples: usize) -> f64 {
        let labels = data.qubit_labels(self.qubit);
        let preds: Vec<bool> = data
            .qubit_pairs(self.qubit)
            .iter()
            .map(|&(i, q)| self.measure(&i[..samples.min(i.len())], &q[..samples.min(q.len())]))
            .collect();
        assignment_fidelity(&preds, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_sim::{FiveQubitDevice, SimConfig};

    fn data(shots: usize, seed: u64) -> ReadoutDataset {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        ReadoutDataset::generate(&device, &config, shots, seed)
    }

    #[test]
    fn herqules_learns_easy_qubits() {
        let train = data(320, 1);
        let test = data(320, 2);
        // The default config is tuned for thousands of shots; crank the
        // step count for the tiny smoke dataset.
        let cfg = HerqulesConfig {
            train: klinq_nn::train::TrainConfig {
                epochs: 120,
                batch_size: 32,
                learning_rate: 1e-3,
                ..klinq_nn::train::TrainConfig::default()
            },
            ..HerqulesConfig::default()
        };
        let h = HerqulesDiscriminator::train(&cfg, &train, 0).unwrap();
        assert_eq!(h.qubit(), 0);
        let f = h.fidelity_at(&test, test.samples());
        // Smoke scale (320 shots, 300 ns): well above chance is all we
        // pin here; the quick-scale Table I run is where HERQULES shows
        // its paper-level fidelity. Floors and the raise-shots-not-floors
        // policy live in `crate::stat_floors`.
        assert!(f > crate::stat_floors::HERQULES_SMOKE_FIDELITY, "HERQULES fidelity {f}");
        assert!(h.report().final_train_accuracy > crate::stat_floors::HERQULES_TRAIN_ACCURACY);
    }

    #[test]
    fn network_is_compact() {
        let train = data(128, 3);
        let h = HerqulesDiscriminator::train(&HerqulesConfig::default(), &train, 0).unwrap();
        // 16 features → 16 → 8 → 1.
        assert_eq!(h.num_params(), 16 * 16 + 16 + 16 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn truncated_evaluation_works() {
        let train = data(320, 5);
        // As above: the default step count is tuned for thousands of
        // shots, so crank epochs for the tiny smoke dataset.
        let cfg = HerqulesConfig {
            train: klinq_nn::train::TrainConfig {
                epochs: 120,
                batch_size: 32,
                learning_rate: 1e-3,
                ..klinq_nn::train::TrainConfig::default()
            },
            ..HerqulesConfig::default()
        };
        let h = HerqulesDiscriminator::train(&cfg, &train, 0).unwrap();
        let f_short = h.fidelity_at(&train, train.samples() / 2);
        // The filter is fit at the full duration, so halving the trace
        // shifts the feature distribution (see `KlinqSystem::evaluate_at`);
        // clearly-above-chance is the right bar at this smoke scale. This
        // floor is one of the two RNG-sensitive ones tracked in
        // `crate::stat_floors` — raise shots/epochs, never the floor.
        assert!(f_short > crate::stat_floors::HERQULES_TRUNCATED_FIDELITY, "{f_short}");
    }
}
