//! Classical matched-filter + threshold discriminator.
//!
//! The pre-neural-network standard (Ryan et al. \[7\]): apply the trained
//! envelope, compare the scalar against the midpoint of the class means.
//! KLiNQ and every learned baseline should beat this floor — it is also
//! the statistic the simulator calibration predicts, making it the
//! natural cross-check between `klinq-sim` and this crate.

use crate::error::KlinqError;
use crate::eval::assignment_fidelity;
use klinq_dsp::IqMatchedFilter;
use klinq_sim::ReadoutDataset;

/// A trained matched-filter threshold discriminator for one qubit.
#[derive(Debug, Clone, PartialEq)]
pub struct MfThreshold {
    qubit: usize,
    filter: IqMatchedFilter,
    threshold: f64,
    excited_is_high: bool,
}

impl MfThreshold {
    /// Trains the envelope and threshold from labelled data.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if either class is empty or traces are
    /// ragged.
    pub fn train(data: &ReadoutDataset, qb: usize) -> Result<Self, KlinqError> {
        let (ground, excited) = data.class_split(qb);
        let filter = IqMatchedFilter::train(&ground, &excited)
            .map_err(klinq_dsp::feature::FitPipelineError::from)?;
        let mean = |set: &[(&[f32], &[f32])]| -> f64 {
            set.iter().map(|&(i, q)| filter.apply(i, q)).sum::<f64>() / set.len() as f64
        };
        let mean_g = mean(&ground);
        let mean_e = mean(&excited);
        Ok(Self {
            qubit: qb,
            filter,
            threshold: 0.5 * (mean_g + mean_e),
            excited_is_high: mean_e > mean_g,
        })
    }

    /// Which qubit this discriminator reads.
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// Classifies one trace (prefix-tolerant).
    pub fn measure(&self, i: &[f32], q: &[f32]) -> bool {
        let s = self.filter.apply_prefix(i, q);
        (s > self.threshold) == self.excited_is_high
    }

    /// Assignment fidelity over the first `samples` of each trace.
    pub fn fidelity_at(&self, data: &ReadoutDataset, samples: usize) -> f64 {
        let labels = data.qubit_labels(self.qubit);
        let preds: Vec<bool> = data
            .qubit_pairs(self.qubit)
            .iter()
            .map(|&(i, q)| self.measure(&i[..samples.min(i.len())], &q[..samples.min(q.len())]))
            .collect();
        assignment_fidelity(&preds, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_sim::{FiveQubitDevice, SimConfig};

    #[test]
    fn threshold_discriminates_all_qubits_above_chance() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(400.0);
        let train = ReadoutDataset::generate(&device, &config, 512, 1);
        let test = ReadoutDataset::generate(&device, &config, 512, 2);
        for qb in 0..5 {
            let mf = MfThreshold::train(&train, qb).unwrap();
            assert_eq!(mf.qubit(), qb);
            let f = mf.fidelity_at(&test, test.samples());
            assert!(f > crate::stat_floors::MF_SMOKE_FIDELITY, "qubit {}: {f}", qb + 1);
        }
    }

    #[test]
    fn truncation_degrades_gracefully() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::default();
        let train = ReadoutDataset::generate(&device, &config, 512, 3);
        let mf = MfThreshold::train(&train, 0).unwrap();
        let full = mf.fidelity_at(&train, 500);
        let half = mf.fidelity_at(&train, 250);
        assert!(full > crate::stat_floors::MF_FULL_SHOT_FIDELITY, "{full}");
        assert!(half > crate::stat_floors::MF_HALF_SHOT_FIDELITY, "{half}");
    }
}
