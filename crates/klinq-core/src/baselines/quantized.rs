//! Post-training quantization baseline (Gautam et al. \[10\]).
//!
//! Reference \[10\] shrinks the baseline FNN by quantizing it for an FPGA
//! accelerator *without* distillation; the paper notes it "sacrifices
//! accuracy and fails to support mid-circuit measurements". This module
//! provides the accuracy half of that comparison: symmetric per-layer
//! fake-quantization of trained weights to a given bit width, so the
//! degradation of a quantized-but-not-distilled model can be measured
//! against KLiNQ at matched storage budgets.

use klinq_nn::{Dense, Fnn, Matrix};

/// Quantizes every weight and bias of `net` to `bits`-bit symmetric
/// integers (per-layer max-abs scaling), returning the degraded network.
///
/// This is "fake quantization": values are snapped to the quantized grid
/// but kept as `f32`, which is exactly what the accuracy comparison
/// needs.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=16`.
pub fn quantize_network(net: &Fnn, bits: u32) -> Fnn {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
    let levels = (1i64 << (bits - 1)) - 1; // symmetric signed range
    let layers = net
        .layers()
        .iter()
        .map(|layer| {
            let max_abs = layer
                .weights()
                .data()
                .iter()
                .chain(layer.bias().iter())
                .fold(0.0f32, |m, &w| m.max(w.abs()));
            if max_abs == 0.0 {
                return layer.clone();
            }
            let scale = max_abs / levels as f32;
            let snap = |w: f32| (w / scale).round() * scale;
            let w = Matrix::from_vec(
                layer.weights().rows(),
                layer.weights().cols(),
                layer.weights().data().iter().map(|&w| snap(w)).collect(),
            );
            let b = layer.bias().iter().map(|&v| snap(v)).collect();
            Dense::from_parts(w, b, layer.activation())
        })
        .collect();
    Fnn::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_nn::train::{train_supervised, Dataset, TrainConfig};
    use klinq_nn::{Activation, FnnBuilder};

    fn trained_classifier() -> (Fnn, Dataset) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for k in 0..128 {
            let jit = ((k * 29 % 13) as f32 - 6.0) * 0.08;
            rows.push(vec![1.0 + jit, 0.8 - jit]);
            labels.push(1.0);
            rows.push(vec![-1.0 - jit, -0.8 + jit]);
            labels.push(0.0);
        }
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let mut net = FnnBuilder::new(2)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(4)
            .build();
        train_supervised(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 60,
                batch_size: 32,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        (net, data)
    }

    #[test]
    fn high_bit_quantization_preserves_accuracy() {
        let (net, data) = trained_classifier();
        let q = quantize_network(&net, 12);
        let base = klinq_nn::train::evaluate_accuracy(&net, &data);
        let quant = klinq_nn::train::evaluate_accuracy(&q, &data);
        assert!((base - quant).abs() < 0.02, "{base} vs {quant}");
    }

    #[test]
    fn quantization_error_grows_as_bits_shrink() {
        let (net, _) = trained_classifier();
        let err_of = |bits: u32| -> f32 {
            let q = quantize_network(&net, bits);
            net.layers()
                .iter()
                .zip(q.layers())
                .map(|(a, b)| {
                    a.weights()
                        .data()
                        .iter()
                        .zip(b.weights().data())
                        .map(|(x, y)| (x - y).abs())
                        .sum::<f32>()
                })
                .sum()
        };
        assert!(err_of(3) > err_of(6));
        assert!(err_of(6) > err_of(10));
    }

    #[test]
    fn weights_land_on_the_quantized_grid() {
        let (net, _) = trained_classifier();
        let bits = 4;
        let q = quantize_network(&net, bits);
        let levels = (1i64 << (bits - 1)) - 1;
        for (orig, quant) in net.layers().iter().zip(q.layers()) {
            let max_abs = orig
                .weights()
                .data()
                .iter()
                .chain(orig.bias().iter())
                .fold(0.0f32, |m, &w| m.max(w.abs()));
            let scale = max_abs / levels as f32;
            for &w in quant.weights().data() {
                let steps = w / scale;
                assert!(
                    (steps - steps.round()).abs() < 1e-3,
                    "{w} is not on the grid"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn silly_bit_widths_rejected() {
        let (net, _) = trained_classifier();
        let _ = quantize_network(&net, 1);
    }

    #[test]
    fn zero_network_is_untouched() {
        use klinq_nn::Matrix;
        let layer = Dense::from_parts(Matrix::zeros(2, 2), vec![0.0; 2], Activation::Relu);
        let net = Fnn::from_layers(vec![layer]);
        let q = quantize_network(&net, 8);
        assert_eq!(net, q);
    }
}
