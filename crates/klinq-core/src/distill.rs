//! Knowledge distillation of teachers into per-qubit students.

use crate::error::KlinqError;
use crate::student::StudentArch;
use crate::teacher::Teacher;
use klinq_dsp::FeaturePipeline;
use klinq_nn::loss::DistillParams;
use klinq_nn::train::{train_distilled, Dataset, TrainConfig, TrainReport};
use klinq_nn::Fnn;
use klinq_sim::ReadoutDataset;
use serde::{Deserialize, Serialize};

/// Result of distilling one qubit's student.
///
/// Serializable as part of a saved [`crate::KlinqSystem`] artifact (see
/// [`crate::persist`]): the trained weights and the fitted pipeline
/// constants round-trip exactly, so a reloaded student predicts
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistilledStudent {
    /// The trained compact network.
    pub net: Fnn,
    /// The fitted feature pipeline it consumes.
    pub pipeline: FeaturePipeline,
    /// Training summary.
    pub report: TrainReport,
}

/// Fits the feature pipeline for qubit `qb` and distills `teacher` into a
/// fresh student of the given architecture.
///
/// The teacher provides soft labels (logits on the raw traces); the
/// student consumes the compact averaged + matched-filter features. This
/// is exactly the paper's offline-training path (Fig. 1).
///
/// # Errors
///
/// Returns [`KlinqError`] if the pipeline cannot be fitted or the feature
/// dataset is malformed.
pub fn distill_student(
    teacher: &Teacher,
    arch: StudentArch,
    train_data: &ReadoutDataset,
    params: DistillParams,
    train: &TrainConfig,
    init_seed: u64,
) -> Result<DistilledStudent, KlinqError> {
    distill_student_at(
        teacher,
        arch,
        train_data,
        train_data.samples(),
        params,
        train,
        init_seed,
    )
}

/// Distills a student for a *shortened* readout duration: the feature
/// pipeline is fitted on the first `samples` of each trace and the student
/// trains on those truncated features, while the teacher's soft labels
/// still come from the full traces it was trained on.
///
/// This is how the duration sweeps (Table II, Fig. 4) are evaluated: one
/// teacher, one student per (qubit, duration) — the student input
/// dimension never changes because the averaging adapts (Sec. III-D).
///
/// # Errors
///
/// Returns [`KlinqError`] if the pipeline cannot be fitted or the feature
/// dataset is malformed.
#[allow(clippy::too_many_arguments)]
pub fn distill_student_at(
    teacher: &Teacher,
    arch: StudentArch,
    train_data: &ReadoutDataset,
    samples: usize,
    params: DistillParams,
    train: &TrainConfig,
    init_seed: u64,
) -> Result<DistilledStudent, KlinqError> {
    let qb = teacher.qubit();
    let samples = samples.min(train_data.samples());
    let min_samples = arch.feature_spec().avg_outputs_per_channel;
    if samples < min_samples {
        return Err(KlinqError::InvalidConfig(format!(
            "{samples} samples cannot feed {min_samples} averaging outputs;              the {arch:?} front end needs at least {min_samples} samples"
        )));
    }
    let (ground, excited) = train_data.class_split(qb);
    let ground = truncate_pairs(ground, samples);
    let excited = truncate_pairs(excited, samples);
    let pipeline = FeaturePipeline::fit(arch.feature_spec(), &ground, &excited)?;

    let rows: Vec<Vec<f32>> = train_data
        .qubit_pairs(qb)
        .iter()
        .map(|&(i, q)| pipeline.extract(&i[..samples], &q[..samples]))
        .collect();
    let labels = train_data.qubit_labels(qb);
    let dataset = Dataset::from_rows(&rows, &labels)?;

    let teacher_logits = teacher.logits(train_data);
    let mut net = arch.build(init_seed);
    let report = train_distilled(&mut net, &dataset, &teacher_logits, params, train);
    Ok(DistilledStudent {
        net,
        pipeline,
        report,
    })
}

/// Truncates `(i, q)` slice pairs to their first `samples` entries.
pub(crate) fn truncate_pairs<'a>(
    set: Vec<(&'a [f32], &'a [f32])>,
    samples: usize,
) -> Vec<(&'a [f32], &'a [f32])> {
    set.into_iter()
        .map(|(i, q)| (&i[..samples], &q[..samples]))
        .collect()
}

/// Trains a student of the same architecture *without* distillation
/// (hard labels only) — the ablation the paper's knowledge-distillation
/// claim rests on.
///
/// # Errors
///
/// Returns [`KlinqError`] if the pipeline cannot be fitted or the feature
/// dataset is malformed.
pub fn train_student_supervised(
    qb: usize,
    arch: StudentArch,
    train_data: &ReadoutDataset,
    train: &TrainConfig,
    init_seed: u64,
) -> Result<DistilledStudent, KlinqError> {
    let (ground, excited) = train_data.class_split(qb);
    let pipeline = FeaturePipeline::fit(arch.feature_spec(), &ground, &excited)?;
    let rows: Vec<Vec<f32>> = train_data
        .qubit_pairs(qb)
        .iter()
        .map(|&(i, q)| pipeline.extract(i, q))
        .collect();
    let dataset = Dataset::from_rows(&rows, &train_data.qubit_labels(qb))?;
    let mut net = arch.build(init_seed);
    let report = klinq_nn::train::train_supervised(&mut net, &dataset, train);
    Ok(DistilledStudent {
        net,
        pipeline,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::TeacherConfig;
    use klinq_sim::{FiveQubitDevice, SimConfig};

    #[test]
    fn distillation_produces_an_accurate_student() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        let train_data = ReadoutDataset::generate(&device, &config, 320, 1);
        let test_data = ReadoutDataset::generate(&device, &config, 320, 2);

        let teacher = Teacher::train(&TeacherConfig::smoke(), &train_data, 0).unwrap();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        };
        let student = distill_student(
            &teacher,
            StudentArch::FnnA,
            &train_data,
            DistillParams::default(),
            &cfg,
            7,
        )
        .unwrap();
        assert_eq!(student.net.num_params(), 657);

        // Evaluate the student on held-out data.
        let labels = test_data.qubit_labels(0);
        let correct = test_data
            .qubit_pairs(0)
            .iter()
            .zip(&labels)
            .filter(|(&(i, q), &y)| {
                student.net.predict(&student.pipeline.extract(i, q)) == (y == 1.0)
            })
            .count();
        let fidelity = correct as f64 / labels.len() as f64;
        assert!(fidelity > crate::stat_floors::STUDENT_DISTILL_FIDELITY, "student fidelity {fidelity}");
    }

    #[test]
    fn supervised_ablation_also_trains() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        let train_data = ReadoutDataset::generate(&device, &config, 256, 3);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 32,
            learning_rate: 1e-3,
            ..TrainConfig::default()
        };
        let s = train_student_supervised(0, StudentArch::FnnA, &train_data, &cfg, 9).unwrap();
        assert!(s.report.final_train_accuracy > crate::stat_floors::STUDENT_SUPERVISED_ACCURACY);
    }
}
