//! The readout-backend abstraction: one inference API, two datapaths.
//!
//! Every discriminator in this workspace exists twice — as the float
//! reference implementation (feature pipeline + `f32` student network)
//! and as the bit-accurate Q16.16 model of the deployed FPGA datapath.
//! Earlier revisions exposed that duality as parallel `measure`/
//! `measure_hw`, `evaluate`/`evaluate_hw`, … method pairs; [`Backend`]
//! collapses the pairs into single generic entry points
//! ([`crate::KlinqDiscriminator::measure_on`],
//! [`crate::BatchDiscriminator::classify_shots_on`],
//! [`crate::KlinqSystem::evaluate_on`]) that take the backend as a value.
//!
//! The legacy twins survive as `#[inline]` one-line wrappers, so existing
//! callers keep compiling, and every wrapper is bitwise-identical to the
//! generic path it forwards to.
//!
//! Backend choice is *data*, not code: a serving front end (see the
//! `klinq-serve` crate) can route each request batch to either datapath
//! from its configuration, and the choice serializes with the rest of a
//! request or experiment description.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which datapath executes an inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Backend {
    /// The float reference path: fitted feature pipeline feeding the
    /// distilled `f32` student network.
    #[default]
    Float,
    /// The bit-accurate Q16.16 model of the compiled FPGA datapath.
    Hardware,
}

impl Backend {
    /// Both backends, float first — convenient for exhaustive tests and
    /// comparisons.
    pub const ALL: [Backend; 2] = [Backend::Float, Backend::Hardware];

    /// `true` for the Q16.16 hardware datapath.
    pub fn is_hardware(self) -> bool {
        matches!(self, Backend::Hardware)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Float => "float",
            Backend::Hardware => "hardware",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_float() {
        assert_eq!(Backend::default(), Backend::Float);
        assert!(!Backend::Float.is_hardware());
        assert!(Backend::Hardware.is_hardware());
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::Float.to_string(), "float");
        assert_eq!(Backend::Hardware.to_string(), "hardware");
    }

    #[test]
    fn all_lists_both_once() {
        assert_eq!(Backend::ALL, [Backend::Float, Backend::Hardware]);
    }

    #[test]
    fn serde_round_trip() {
        for b in Backend::ALL {
            let json = serde_json::to_string(&b).unwrap();
            let back: Backend = serde_json::from_str(&json).unwrap();
            assert_eq!(back, b);
        }
    }
}
