//! KLiNQ: knowledge-distillation-assisted lightweight qubit-readout
//! discriminators — the paper's primary contribution.
//!
//! This crate assembles the substrates (`klinq-sim`, `klinq-dsp`,
//! `klinq-nn`, `klinq-fpga`) into the complete system of the DAC 2025
//! paper:
//!
//! 1. Train a large per-qubit **teacher** FNN on raw 1 µs I/Q traces
//!    ([`teacher`]); the same architecture doubles as the Baseline FNN of
//!    Lienhard et al. in the comparisons.
//! 2. Fit each qubit's **feature pipeline** (interval averaging + matched
//!    filter + normalization) and **distill** the teacher into a tiny
//!    student — FNN-A (31→16→8→1) for the high-SNR qubits 1, 4, 5 and
//!    FNN-B (201→16→8→1) for the noisy qubits 2, 3 ([`student`],
//!    [`distill`]).
//! 3. Deploy the students as independent per-qubit discriminators capable
//!    of **mid-circuit measurement** ([`discriminator`]), optionally
//!    compiled to the bit-accurate FPGA datapath.
//! 4. Compare against **baselines** ([`baselines`]): the raw-trace
//!    Baseline FNN, a HERQULES-style matched-filter + FNN, a post-training
//!    quantized FNN, and a classical matched-filter threshold.
//! 5. Reproduce every table and figure of the evaluation
//!    ([`experiments`]).
//!
//! # Examples
//!
//! ```no_run
//! use klinq_core::experiments::ExperimentConfig;
//! use klinq_core::KlinqSystem;
//!
//! let config = ExperimentConfig::smoke();
//! let system = KlinqSystem::train(&config)?;
//! let report = system.evaluate();
//! println!("F5Q = {:.3}", report.geometric_mean());
//! // Mid-circuit: read qubit 3 alone from a fresh trace.
//! let shot = system.test_data().shot(0);
//! let state = system.measure(3, &shot.traces[3].i, &shot.traces[3].q);
//! println!("qubit 3 is {}", if state { "|1>" } else { "|0>" });
//! # Ok::<(), klinq_core::KlinqError>(())
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod baselines;
pub mod batch;
pub mod discriminator;
pub mod distill;
pub mod error;
pub mod eval;
pub mod experiments;
pub mod joint;
pub mod params;
pub mod persist;
pub mod student;
pub mod teacher;
pub mod testkit;

pub use backend::Backend;
pub use batch::{BatchDiscriminator, ShotScratch, ShotStates};
pub use discriminator::{KlinqDiscriminator, KlinqSystem};
pub use error::KlinqError;
pub use eval::FidelityReport;
pub use student::StudentArch;

pub mod stat_floors {
    //! Named floors for the statistically fragile tests.
    //!
    //! Two tests sit close to their floors because their fidelity depends
    //! on the exact RNG stream at smoke scale:
    //! `baselines::herqules::tests::truncated_evaluation_works` and
    //! `joint::tests::joint_discriminator_reads_all_qubits`. The floors
    //! live here so every threshold is in one place next to the policy.
    //!
    //! **Policy (see ROADMAP "Statistical-threshold fragility"):** when a
    //! floor flakes after touching the vendored rand or any training
    //! code, raise the test's shots/epochs until the margin returns —
    //! never loosen the floor itself, which would let a real fidelity
    //! regression through.

    /// HERQULES smoke fidelity at the full trace duration.
    pub const HERQULES_SMOKE_FIDELITY: f64 = 0.68;
    /// HERQULES final training accuracy at smoke scale.
    pub const HERQULES_TRAIN_ACCURACY: f64 = 0.70;
    /// HERQULES fidelity when evaluating at half the trained duration
    /// (the filter is fit at the full duration, so truncation shifts the
    /// feature distribution — clearly-above-chance is the bar).
    pub const HERQULES_TRUNCATED_FIDELITY: f64 = 0.55;
    /// Joint-discriminator per-qubit floor (above-chance on every qubit).
    pub const JOINT_PER_QUBIT_FIDELITY: f64 = 0.55;
    /// Relaxed floor for qubit 2, the hardest qubit at smoke scale.
    pub const JOINT_WEAK_QUBIT_FIDELITY: f64 = 0.5;
    /// Joint-discriminator geometric-mean floor.
    pub const JOINT_GEOMEAN_FIDELITY: f64 = 0.6;
    /// Joint-discriminator final training accuracy.
    pub const JOINT_TRAIN_ACCURACY: f64 = 0.7;

    /// Matched-filter smoke fidelity on the hardest per-qubit split.
    pub const MF_SMOKE_FIDELITY: f64 = 0.6;
    /// Matched-filter fidelity at the full trained shot budget.
    pub const MF_FULL_SHOT_FIDELITY: f64 = 0.9;
    /// Matched-filter fidelity when evaluated at half the shot budget.
    pub const MF_HALF_SHOT_FIDELITY: f64 = 0.75;
    /// Distilled-student fidelity after teacher-guided training.
    pub const STUDENT_DISTILL_FIDELITY: f64 = 0.72;
    /// Student training accuracy in the supervised (no-teacher) ablation.
    pub const STUDENT_SUPERVISED_ACCURACY: f64 = 0.72;
    /// Teacher smoke fidelity on a held-out split.
    pub const TEACHER_SMOKE_FIDELITY: f64 = 0.72;
    /// Teacher final training accuracy at smoke scale.
    pub const TEACHER_TRAIN_ACCURACY: f64 = 0.80;

    /// End-to-end smoke floors for the workspace-level integration test
    /// (`tests/baselines.rs`), which trains on a larger shared dataset
    /// than the per-crate unit smokes.
    pub const SMOKE_E2E_MF_FIDELITY: f64 = 0.78;
    /// HERQULES floor in the workspace-level integration test.
    pub const SMOKE_E2E_HERQULES_FIDELITY: f64 = 0.68;
    /// Teacher floor in the workspace-level integration test.
    pub const SMOKE_E2E_TEACHER_FIDELITY: f64 = 0.70;
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for this crate's unit-test binary.

    use crate::discriminator::KlinqSystem;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    /// One smoke-scale system shared across every test module
    /// (discriminator, batch, experiments, persist): training dominates
    /// the suite's wall clock, and all consumers take `&`-access, so
    /// each test binary trains at most once — and usually zero times,
    /// because the fixture is disk-cached across binaries through
    /// [`crate::testkit`]. Unit tests get no `CARGO_TARGET_TMPDIR`, so
    /// the cache directory is derived the way cargo derives it:
    /// `$CARGO_TARGET_DIR/tmp` when the target dir is relocated, the
    /// workspace's `target/tmp` otherwise — keeping it the same file
    /// the integration tests and benches use.
    pub(crate) fn smoke_system() -> &'static KlinqSystem {
        static SYS: OnceLock<KlinqSystem> = OnceLock::new();
        SYS.get_or_init(|| {
            let cache_dir = std::env::var_os("CARGO_TARGET_DIR")
                .map(|d| PathBuf::from(d).join("tmp"))
                .unwrap_or_else(|| {
                    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"))
                });
            crate::testkit::cached_smoke_system(&cache_dir)
        })
    }
}
