//! Structure-of-arrays trace blocks for the cache-blocked batch engine.
//!
//! The serving hot path classifies shots in chunks; within a chunk, the
//! front-end stages (averaging, matched filter, normalization) and the
//! fixed-point datapath all walk the same raw traces. In the
//! array-of-structures layout each shot's I and Q traces are separate heap
//! allocations, so a four-shot block touches eight scattered buffers per
//! qubit. [`TraceBatch`] gathers one block's traces into two contiguous
//! **lane-interleaved** buffers (sample `k` of lane `l` at `k * LANES + l`):
//! every fused kernel then streams one buffer front to back, the whole
//! block stays L1-resident across pipeline stages, and the inner loops
//! vectorize across lanes while each lane keeps its scalar summation
//! order (see [`crate::averaging`] for the order policy).
//!
//! The gather itself is one linear copy per stage-*pipeline* (not per
//! stage): averaging, matched filter and normalization all reuse it, which
//! is where the cache-blocked layout pays for the copy.

/// A gathered block of [`TraceBatch::LANES`] equal-length I/Q trace pairs
/// in lane-interleaved SoA layout.
///
/// The buffers are reusable: [`TraceBatch::gather`] reshapes in place, so
/// one batch serves any number of blocks without reallocating once it has
/// warmed up to the longest trace seen.
///
/// # Examples
///
/// ```
/// use klinq_dsp::TraceBatch;
/// let t: Vec<Vec<f32>> = (0..8).map(|l| vec![l as f32; 6]).collect();
/// let mut batch = TraceBatch::new();
/// let gathered = batch.gather([
///     (&t[0], &t[1]),
///     (&t[2], &t[3]),
///     (&t[4], &t[5]),
///     (&t[6], &t[7]),
/// ]);
/// assert!(gathered);
/// assert_eq!(batch.len(), 6);
/// // Sample 0 of lanes 0..4 on the I channel:
/// assert_eq!(&batch.i_interleaved()[..4], &[0.0, 2.0, 4.0, 6.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBatch {
    len: usize,
    i: Vec<f32>,
    q: Vec<f32>,
}

impl TraceBatch {
    /// Shots per block. Four `f64` matched-filter accumulators fill one
    /// AVX2 register, and four lanes of `f32` averaging fill half of one —
    /// wide enough to hide FP latency, small enough that a block of
    /// full-length traces (4 × 2 × 500 samples) stays L1-resident.
    pub const LANES: usize = 4;

    /// An empty batch (buffers grow on first gather).
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples per lane of the gathered block (0 before the first gather).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first successful gather.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gathers four `(i, q)` trace pairs into the interleaved buffers,
    /// reusing the existing allocations.
    ///
    /// Returns `false` — leaving the batch unchanged — when the traces are
    /// ragged (any I or Q length differing from lane 0's I length): ragged
    /// blocks take the caller's scalar path, which produces identical
    /// results, so the fused kernels never need a ragged code path.
    pub fn gather(&mut self, traces: [(&[f32], &[f32]); Self::LANES]) -> bool {
        let len = traces[0].0.len();
        if traces.iter().any(|&(i, q)| i.len() != len || q.len() != len) {
            return false;
        }
        self.len = len;
        interleave_into(&traces.map(|(i, _)| i), len, &mut self.i);
        interleave_into(&traces.map(|(_, q)| q), len, &mut self.q);
        true
    }

    /// The interleaved I channel: sample `k` of lane `l` at `k * LANES + l`.
    pub fn i_interleaved(&self) -> &[f32] {
        &self.i
    }

    /// The interleaved Q channel (same layout as the I channel).
    pub fn q_interleaved(&self) -> &[f32] {
        &self.q
    }
}

/// Transposes `LANES` equal-length slices into one lane-interleaved buffer.
fn interleave_into(lanes: &[&[f32]; TraceBatch::LANES], len: usize, out: &mut Vec<f32>) {
    // Resize without clearing: the transpose overwrites every slot, so
    // only growth beyond the warmest shape ever zero-fills (a cleared
    // resize would memset the whole buffer on every gather of the hot
    // path).
    out.resize(len * TraceBatch::LANES, 0.0);
    for (k, slot) in out.chunks_exact_mut(TraceBatch::LANES).enumerate() {
        for (s, lane) in slot.iter_mut().zip(lanes) {
            *s = lane[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(len: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..4)
            .map(|l| {
                let i: Vec<f32> = (0..len).map(|k| (k * 4 + l) as f32).collect();
                let q: Vec<f32> = (0..len).map(|k| -((k * 4 + l) as f32)).collect();
                (i, q)
            })
            .collect()
    }

    fn as_refs(t: &[(Vec<f32>, Vec<f32>)]) -> [(&[f32], &[f32]); 4] {
        std::array::from_fn(|l| (t[l].0.as_slice(), t[l].1.as_slice()))
    }

    #[test]
    fn gather_interleaves_lanes() {
        let t = lanes(5);
        let mut batch = TraceBatch::new();
        assert!(batch.is_empty());
        assert!(batch.gather(as_refs(&t)));
        assert!(!batch.is_empty());
        assert_eq!(batch.len(), 5);
        for k in 0..5 {
            for (l, lane) in t.iter().enumerate() {
                assert_eq!(batch.i_interleaved()[k * 4 + l], lane.0[k]);
                assert_eq!(batch.q_interleaved()[k * 4 + l], lane.1[k]);
            }
        }
    }

    #[test]
    fn gather_reuses_buffers_across_lengths() {
        let mut batch = TraceBatch::new();
        assert!(batch.gather(as_refs(&lanes(16))));
        assert_eq!(batch.len(), 16);
        // Shrinking reshapes in place.
        let t = lanes(3);
        assert!(batch.gather(as_refs(&t)));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.i_interleaved().len(), 12);
        assert_eq!(batch.i_interleaved()[5], t[1].0[1]);
    }

    #[test]
    fn ragged_blocks_are_rejected_unchanged() {
        let t = lanes(8);
        let mut batch = TraceBatch::new();
        assert!(batch.gather(as_refs(&t)));
        let short = vec![0.0f32; 7];
        // Ragged I.
        assert!(!batch.gather([
            (t[0].0.as_slice(), t[0].1.as_slice()),
            (short.as_slice(), t[1].1.as_slice()),
            (t[2].0.as_slice(), t[2].1.as_slice()),
            (t[3].0.as_slice(), t[3].1.as_slice()),
        ]));
        // Ragged Q within one lane.
        assert!(!batch.gather([
            (t[0].0.as_slice(), short.as_slice()),
            (t[1].0.as_slice(), t[1].1.as_slice()),
            (t[2].0.as_slice(), t[2].1.as_slice()),
            (t[3].0.as_slice(), t[3].1.as_slice()),
        ]));
        // The previous gather is still intact.
        assert_eq!(batch.len(), 8);
        assert_eq!(batch.i_interleaved()[0], t[0].0[0]);
    }
}
