//! Digital signal processing blocks for KLiNQ qubit-state readout.
//!
//! This crate implements the data pre-processing and input-optimization
//! stages of the KLiNQ paper (Sec. III-B):
//!
//! - [`stats`] — running statistics, the geometric-mean fidelity metric and
//!   Gaussian error-function helpers used for simulator calibration.
//! - [`matched_filter`] — per-qubit matched filters with the paper's
//!   envelope `mean(T0 − T1) / var(T0 − T1)`, applied as a dot product to
//!   produce a single scalar feature.
//! - [`averaging`] — interval averaging that compresses the raw I/Q traces
//!   into a fixed-dimensional representation; the samples-per-interval
//!   adapts to the trace duration so the network input size stays constant.
//! - [`normalize`] — `(x − x_min)/σ` feature normalization, including the
//!   hardware variant where σ is snapped to a power of two so the division
//!   becomes an arithmetic shift.
//! - [`feature`] — the complete student-input pipeline
//!   (averaging ∥ matched filter → normalize → concatenate), producing the
//!   31-dimensional (FNN-A) or 201-dimensional (FNN-B) vectors.
//! - [`soa`] — lane-interleaved structure-of-arrays trace blocks
//!   ([`TraceBatch`]) feeding the fused, cache-blocked batch kernels of
//!   the serving engine.
//!
//! All functions operate on plain `f32`/`f64` slices so the crate stays
//! independent of the simulator and network crates.

#![forbid(unsafe_code)]

pub mod averaging;
pub mod feature;
pub mod matched_filter;
pub mod normalize;
pub mod soa;
pub mod stats;

pub use averaging::IntervalAverager;
pub use feature::{FeaturePipeline, FeatureSpec};
pub use matched_filter::{IqMatchedFilter, MatchedFilter};
pub use normalize::{ShiftVecNormalizer, VecNormalizer};
pub use soa::TraceBatch;
pub use stats::{geometric_mean, mean, normal_cdf, population_variance, std_dev};
