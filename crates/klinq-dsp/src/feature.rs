//! The student-network input pipeline: averaging ∥ matched filter → normalize.
//!
//! For each qubit the paper forms the student input by concatenating the
//! interval-averaged I and Q traces with the matched-filter scalar, then
//! normalizing. FNN-A consumes 15 + 15 + 1 = 31 features; FNN-B consumes
//! 100 + 100 + 1 = 201 features. The pipeline is fit once on training data
//! (envelope + normalization constants) and is afterwards a pure function of
//! the raw trace — exactly the structure the FPGA implements.

use crate::averaging::IntervalAverager;
use crate::matched_filter::{IqMatchedFilter, TrainFilterError};
use crate::normalize::{FitNormalizerError, VecNormalizer};
use crate::soa::TraceBatch;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of a student input layout.
///
/// # Examples
///
/// ```
/// use klinq_dsp::FeatureSpec;
/// assert_eq!(FeatureSpec::fnn_a().input_dim(), 31);
/// assert_eq!(FeatureSpec::fnn_b().input_dim(), 201);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Averaged points per quadrature channel (15 for FNN-A, 100 for FNN-B).
    pub avg_outputs_per_channel: usize,
}

impl FeatureSpec {
    /// FNN-A layout (qubits 1, 4, 5): 64 ns averaging intervals at 1 µs.
    pub fn fnn_a() -> Self {
        Self {
            avg_outputs_per_channel: 15,
        }
    }

    /// FNN-B layout (qubits 2, 3): 10 ns averaging intervals at 1 µs.
    pub fn fnn_b() -> Self {
        Self {
            avg_outputs_per_channel: 100,
        }
    }

    /// Total feature dimension: `2 × avg + 1` (I, Q, matched filter).
    pub fn input_dim(&self) -> usize {
        2 * self.avg_outputs_per_channel + 1
    }

    /// The averager realizing this layout.
    pub fn averager(&self) -> IntervalAverager {
        IntervalAverager::new(self.avg_outputs_per_channel)
    }
}

/// Error from fitting a [`FeaturePipeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitPipelineError {
    /// Matched-filter training failed.
    Filter(TrainFilterError),
    /// Normalizer fitting failed.
    Normalizer(FitNormalizerError),
}

impl fmt::Display for FitPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Filter(e) => write!(f, "matched filter training failed: {e}"),
            Self::Normalizer(e) => write!(f, "normalizer fitting failed: {e}"),
        }
    }
}

impl std::error::Error for FitPipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Filter(e) => Some(e),
            Self::Normalizer(e) => Some(e),
        }
    }
}

impl From<TrainFilterError> for FitPipelineError {
    fn from(e: TrainFilterError) -> Self {
        Self::Filter(e)
    }
}

impl From<FitNormalizerError> for FitPipelineError {
    fn from(e: FitNormalizerError) -> Self {
        Self::Normalizer(e)
    }
}

/// A fitted per-qubit feature pipeline.
///
/// Construction trains the matched-filter envelope on the class-separated
/// traces and fits normalization constants on the resulting raw features;
/// [`FeaturePipeline::extract`] then maps any raw (I, Q) trace pair to the
/// student input vector.
///
/// # Examples
///
/// ```
/// use klinq_dsp::{FeaturePipeline, FeatureSpec};
/// // Toy classes: constant-level traces (31-dim FNN-A layout).
/// let ground: Vec<(Vec<f32>, Vec<f32>)> = (0..32)
///     .map(|k| (vec![1.0 + 0.01 * (k % 5) as f32; 60], vec![0.5; 60]))
///     .collect();
/// let excited: Vec<(Vec<f32>, Vec<f32>)> = (0..32)
///     .map(|k| (vec![-1.0 - 0.01 * (k % 5) as f32; 60], vec![-0.5; 60]))
///     .collect();
/// let g: Vec<(&[f32], &[f32])> = ground.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
/// let e: Vec<(&[f32], &[f32])> = excited.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
/// let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &g, &e)?;
/// let features = pipe.extract(&ground[0].0, &ground[0].1);
/// assert_eq!(features.len(), 31);
/// # Ok::<(), klinq_dsp::feature::FitPipelineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturePipeline {
    spec: FeatureSpec,
    averager: IntervalAverager,
    filter: IqMatchedFilter,
    normalizer: VecNormalizer,
}

impl FeaturePipeline {
    /// Fits the pipeline from labelled training traces.
    ///
    /// # Errors
    ///
    /// Returns [`FitPipelineError`] when either class is empty or traces
    /// are ragged.
    pub fn fit(
        spec: FeatureSpec,
        ground: &[(&[f32], &[f32])],
        excited: &[(&[f32], &[f32])],
    ) -> Result<Self, FitPipelineError> {
        let filter = IqMatchedFilter::train(ground, excited)?;
        let averager = spec.averager();
        let mut raw_rows: Vec<Vec<f32>> =
            Vec::with_capacity(ground.len() + excited.len());
        for &(i, q) in ground.iter().chain(excited.iter()) {
            raw_rows.push(raw_features(&averager, &filter, i, q));
        }
        let row_refs: Vec<&[f32]> = raw_rows.iter().map(|r| r.as_slice()).collect();
        // σ is snapped to powers of two at fit time, exactly as the paper
        // prepares its normalization constants: the network then trains on
        // the same feature scaling the shift-based hardware will apply.
        let normalizer = VecNormalizer::fit(&row_refs)?.snap_to_pow2();
        Ok(Self {
            spec,
            averager,
            filter,
            normalizer,
        })
    }

    /// The layout this pipeline produces.
    pub fn spec(&self) -> FeatureSpec {
        self.spec
    }

    /// Output feature dimension.
    pub fn input_dim(&self) -> usize {
        self.spec.input_dim()
    }

    /// The interval averager stage.
    pub fn averager(&self) -> &IntervalAverager {
        &self.averager
    }

    /// The matched-filter stage.
    pub fn filter(&self) -> &IqMatchedFilter {
        &self.filter
    }

    /// The normalization stage (float/training form).
    pub fn normalizer(&self) -> &VecNormalizer {
        &self.normalizer
    }

    /// Raw (pre-normalization) features: `[avg_i, avg_q, mf]`.
    ///
    /// Exposed because the FPGA model normalizes in fixed point and needs
    /// the un-normalized values as its input stream.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count.
    pub fn extract_raw(&self, i: &[f32], q: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.input_dim()];
        self.extract_raw_into(i, q, &mut out);
        out
    }

    /// Writes the raw (pre-normalization) features into a caller buffer —
    /// the allocation-free form of [`Self::extract_raw`], bitwise-identical
    /// to it.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.input_dim()` or the traces are shorter
    /// than the averager output count.
    pub fn extract_raw_into(&self, i: &[f32], q: &[f32], out: &mut [f32]) {
        let m = self.averager.outputs();
        assert_eq!(out.len(), 2 * m + 1, "feature buffer size mismatch");
        let (avg_i, rest) = out.split_at_mut(m);
        let (avg_q, mf) = rest.split_at_mut(m);
        self.averager.average_into(i, avg_i);
        self.averager.average_into(q, avg_q);
        mf[0] = self.filter.apply_prefix(i, q) as f32;
    }

    /// The full feature vector the student network consumes.
    ///
    /// Works for any trace duration no shorter than the averaging output
    /// count: the averager adapts its group size and the matched filter is
    /// applied over the available prefix of its envelope.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count.
    pub fn extract(&self, i: &[f32], q: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.input_dim()];
        self.extract_into(i, q, &mut out);
        out
    }

    /// Writes the full normalized feature vector into a caller buffer —
    /// the allocation-free form of [`Self::extract`], bitwise-identical to
    /// it (the serving hot path reuses one buffer across shots).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.input_dim()` or the traces are shorter
    /// than the averager output count.
    pub fn extract_into(&self, i: &[f32], q: &[f32], out: &mut [f32]) {
        self.extract_raw_into(i, q, out);
        self.normalizer.apply_in_place(out);
    }

    /// Fused SoA form of [`Self::extract_into`] over a gathered
    /// [`TraceBatch`]: all three front-end stages — averaging, matched
    /// filter, normalization — run over the block's two interleaved
    /// buffers while they are L1-resident, instead of three AoS passes per
    /// shot. `scratch` holds the lane-interleaved intermediate features
    /// (resized as needed, reusable across calls); row `l` of `rows`
    /// receives the normalized feature vector of lane `l`,
    /// **bitwise-identical** to [`Self::extract_into`] on that lane's
    /// traces (each stage keeps its per-lane scalar summation order; see
    /// [`crate::averaging`] for the order policy).
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from [`Self::input_dim`] or the
    /// batch's traces are shorter than the averager output count.
    pub fn extract_batch_into(
        &self,
        batch: &TraceBatch,
        mut rows: [&mut [f32]; TraceBatch::LANES],
        scratch: &mut Vec<f32>,
    ) {
        const L: usize = TraceBatch::LANES;
        let m = self.averager.outputs();
        for row in &rows {
            assert_eq!(row.len(), 2 * m + 1, "feature buffer size mismatch");
        }
        // Resize without clearing: every slot is written below, so the
        // warm path never memsets (same policy as `soa::interleave_into`).
        scratch.resize((2 * m + 1) * L, 0.0);
        let (avg_i, rest) = scratch.split_at_mut(m * L);
        let (avg_q, mf_slot) = rest.split_at_mut(m * L);
        self.averager.average_batch_into(batch.i_interleaved(), avg_i);
        self.averager.average_batch_into(batch.q_interleaved(), avg_q);
        let mf = self.filter.apply_prefix_batch(
            batch.i_interleaved(),
            batch.q_interleaved(),
            batch.len(),
        );
        for (slot, v) in mf_slot.iter_mut().zip(mf) {
            *slot = v as f32;
        }
        // Normalize lane-interleaved (the per-feature constants broadcast
        // across the four contiguous lanes) and scatter into the rows.
        let mins = self.normalizer.mins();
        let sigmas = self.normalizer.sigmas();
        for (f, sample) in scratch.chunks_exact(L).enumerate() {
            let (mn, sg) = (mins[f], sigmas[f]);
            for (l, row) in rows.iter_mut().enumerate() {
                row[f] = (sample[l] - mn) / sg;
            }
        }
    }
}

fn raw_features(
    averager: &IntervalAverager,
    filter: &IqMatchedFilter,
    i: &[f32],
    q: &[f32],
) -> Vec<f32> {
    let m = averager.outputs();
    let mut raw = vec![0.0; 2 * m + 1];
    averager.average_into(i, &mut raw[..m]);
    averager.average_into(q, &mut raw[m..2 * m]);
    raw[2 * m] = filter.apply_prefix(i, q) as f32;
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned (i, q) traces for one prepared class.
    type ClassTraces = Vec<(Vec<f32>, Vec<f32>)>;

    fn toy_classes(n: usize, len: usize) -> (ClassTraces, ClassTraces) {
        let make = |level: f32| -> Vec<(Vec<f32>, Vec<f32>)> {
            (0..n)
                .map(|k| {
                    let ripple = 0.05 * ((k % 7) as f32 - 3.0);
                    let i: Vec<f32> = (0..len)
                        .map(|t| level + ripple + 0.02 * ((t % 5) as f32))
                        .collect();
                    let q: Vec<f32> = (0..len).map(|t| -level + 0.01 * ((t % 3) as f32)).collect();
                    (i, q)
                })
                .collect()
        };
        (make(1.0), make(-1.0))
    }

    fn as_refs(v: &[(Vec<f32>, Vec<f32>)]) -> Vec<(&[f32], &[f32])> {
        v.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect()
    }

    #[test]
    fn dims_match_paper() {
        assert_eq!(FeatureSpec::fnn_a().input_dim(), 31);
        assert_eq!(FeatureSpec::fnn_b().input_dim(), 201);
        assert_eq!(FeatureSpec::fnn_a().averager().outputs(), 15);
        assert_eq!(FeatureSpec::fnn_b().averager().outputs(), 100);
    }

    #[test]
    fn pipeline_produces_expected_dim() {
        let (g, e) = toy_classes(24, 120);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        let f = pipe.extract(&g[0].0, &g[0].1);
        assert_eq!(f.len(), 31);
        assert_eq!(pipe.input_dim(), 31);
        assert_eq!(pipe.extract_raw(&g[0].0, &g[0].1).len(), 31);
    }

    #[test]
    fn features_separate_classes() {
        let (g, e) = toy_classes(24, 120);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        // The matched-filter feature (last element, before normalization)
        // must be positive for ground, negative for excited.
        for (i, q) in &g {
            assert!(*pipe.extract_raw(i, q).last().unwrap() > 0.0);
        }
        for (i, q) in &e {
            assert!(*pipe.extract_raw(i, q).last().unwrap() < 0.0);
        }
    }

    #[test]
    fn shorter_traces_still_produce_fixed_dim() {
        let (g, e) = toy_classes(24, 120);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        // Evaluate at 60% of the training duration.
        let f = pipe.extract(&g[0].0[..72], &g[0].1[..72]);
        assert_eq!(f.len(), 31);
    }

    #[test]
    fn extract_into_is_bitwise_identical_to_extract() {
        let (g, e) = toy_classes(24, 120);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        let mut buf = vec![0.0f32; pipe.input_dim()];
        for (i, q) in g.iter().chain(&e) {
            pipe.extract_into(i, q, &mut buf);
            assert_eq!(buf, pipe.extract(i, q));
            pipe.extract_raw_into(i, q, &mut buf);
            assert_eq!(buf, pipe.extract_raw(i, q));
        }
    }

    #[test]
    #[should_panic(expected = "feature buffer size mismatch")]
    fn extract_into_rejects_wrong_buffer() {
        let (g, e) = toy_classes(8, 60);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        let mut buf = vec![0.0f32; 7];
        pipe.extract_into(&g[0].0, &g[0].1, &mut buf);
    }

    #[test]
    fn extract_batch_into_is_bitwise_identical_to_extract_into() {
        let (g, e) = toy_classes(24, 120);
        for (spec, lens) in [
            (FeatureSpec::fnn_a(), [120usize, 72]),
            (FeatureSpec::fnn_b(), [120, 105]),
        ] {
            let pipe = FeaturePipeline::fit(spec, &as_refs(&g), &as_refs(&e)).unwrap();
            let dim = pipe.input_dim();
            let mut batch = TraceBatch::new();
            let mut scratch = Vec::new();
            // Full-length and truncated blocks (shortened-trace evaluation).
            for len in lens {
                let block: Vec<(&[f32], &[f32])> = g
                    .iter()
                    .take(4)
                    .map(|(i, q)| (&i[..len], &q[..len]))
                    .collect();
                assert!(batch.gather([block[0], block[1], block[2], block[3]]));
                let mut rows = vec![0.0f32; 4 * dim];
                {
                    let mut iter = rows.chunks_exact_mut(dim);
                    let rs: [&mut [f32]; 4] = std::array::from_fn(|_| iter.next().unwrap());
                    pipe.extract_batch_into(&batch, rs, &mut scratch);
                }
                for (l, &(i, q)) in block.iter().enumerate() {
                    let mut reference = vec![0.0f32; dim];
                    pipe.extract_into(i, q, &mut reference);
                    assert_eq!(
                        &rows[l * dim..(l + 1) * dim],
                        &reference[..],
                        "lane {l} diverged (len={len}, dim={dim})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature buffer size mismatch")]
    fn extract_batch_into_rejects_wrong_rows() {
        let (g, e) = toy_classes(8, 60);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        let mut batch = TraceBatch::new();
        assert!(batch.gather(std::array::from_fn(|l| (g[l].0.as_slice(), g[l].1.as_slice()))));
        let mut rows = [0.0f32; 4 * 7];
        let mut iter = rows.chunks_exact_mut(7);
        let rs: [&mut [f32]; 4] = std::array::from_fn(|_| iter.next().unwrap());
        pipe.extract_batch_into(&batch, rs, &mut Vec::new());
    }

    #[test]
    fn normalization_is_applied() {
        let (g, e) = toy_classes(24, 120);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &as_refs(&e)).unwrap();
        let raw = pipe.extract_raw(&g[0].0, &g[0].1);
        let norm = pipe.extract(&g[0].0, &g[0].1);
        let manual = pipe.normalizer().apply(&raw);
        assert_eq!(norm, manual);
    }

    #[test]
    fn empty_class_propagates_error() {
        let (g, _) = toy_classes(4, 60);
        let err = FeaturePipeline::fit(FeatureSpec::fnn_a(), &as_refs(&g), &[]).unwrap_err();
        assert!(matches!(err, FitPipelineError::Filter(_)));
        assert!(err.to_string().contains("matched filter"));
        // Error source chain is preserved.
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn fnn_b_layout_works() {
        let (g, e) = toy_classes(16, 500);
        let pipe = FeaturePipeline::fit(FeatureSpec::fnn_b(), &as_refs(&g), &as_refs(&e)).unwrap();
        assert_eq!(pipe.extract(&g[0].0, &g[0].1).len(), 201);
    }
}
