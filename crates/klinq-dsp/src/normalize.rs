//! Feature normalization: `(x − x_min) / σ`, float and shift-based forms.
//!
//! The KLiNQ normalization layer "optimizes the data distribution ... and
//! mitigates the risk of overflow in the fully connected layers". On the
//! FPGA the per-feature constants `x_min` and `σ` are prepared during
//! training and σ is approximated as a power of two, replacing the division
//! with a shift that completes in two clock cycles (Sec. IV).
//!
//! [`VecNormalizer`] is the training-time (float) form;
//! [`ShiftVecNormalizer`] is the deployment form whose constants are what
//! the hardware model in `klinq-fpga` consumes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from fitting a normalizer on unusable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitNormalizerError {
    /// No feature vectors were provided.
    EmptyDataset,
    /// Feature vectors have inconsistent dimensionality.
    DimensionMismatch {
        /// Expected dimension (from the first vector).
        expected: usize,
        /// Offending dimension.
        got: usize,
    },
}

impl fmt::Display for FitNormalizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "normalizer fit requires at least one feature vector"),
            Self::DimensionMismatch { expected, got } => {
                write!(f, "feature dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FitNormalizerError {}

/// Per-feature `(x − min) / σ` normalizer (training-time float form).
///
/// Features with zero variance get σ = 1 so they normalize to zero instead
/// of dividing by zero.
///
/// # Examples
///
/// ```
/// use klinq_dsp::VecNormalizer;
/// let data = vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]];
/// let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
/// let norm = VecNormalizer::fit(&refs)?;
/// let out = norm.apply(&[2.0, 20.0]);
/// // (2 - 0) / std([0,2,4]) and (20 - 10) / std([10,20,30])
/// assert!((out[0] - 2.0 / (8.0f32 / 3.0).sqrt()).abs() < 1e-5);
/// # Ok::<(), klinq_dsp::normalize::FitNormalizerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VecNormalizer {
    mins: Vec<f32>,
    sigmas: Vec<f32>,
}

impl VecNormalizer {
    /// Fits per-feature minimum and population standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`FitNormalizerError`] on an empty dataset or ragged rows.
    pub fn fit(rows: &[&[f32]]) -> Result<Self, FitNormalizerError> {
        let first = rows.first().ok_or(FitNormalizerError::EmptyDataset)?;
        let dim = first.len();
        let n = rows.len() as f64;
        let mut mins = vec![f32::INFINITY; dim];
        let mut sums = vec![0.0f64; dim];
        for row in rows {
            if row.len() != dim {
                return Err(FitNormalizerError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            for ((m, s), &x) in mins.iter_mut().zip(&mut sums).zip(row.iter()) {
                if x < *m {
                    *m = x;
                }
                *s += x as f64;
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
        let mut var = vec![0.0f64; dim];
        for row in rows {
            for ((v, &x), m) in var.iter_mut().zip(row.iter()).zip(&means) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let sigmas = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt() as f32;
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { mins, sigmas })
    }

    /// Builds from explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or any σ is
    /// non-positive.
    pub fn from_constants(mins: Vec<f32>, sigmas: Vec<f32>) -> Self {
        assert_eq!(mins.len(), sigmas.len(), "mins/sigmas length mismatch");
        assert!(
            sigmas.iter().all(|&s| s > 0.0),
            "sigmas must be strictly positive"
        );
        Self { mins, sigmas }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Per-feature minima.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-feature standard deviations.
    pub fn sigmas(&self) -> &[f32] {
        &self.sigmas
    }

    /// Normalizes one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim(), "normalizer dimension mismatch");
        x.iter()
            .zip(self.mins.iter().zip(&self.sigmas))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// In-place variant of [`Self::apply`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_in_place(&self, x: &mut [f32]) {
        assert_eq!(x.len(), self.dim(), "normalizer dimension mismatch");
        for (v, (&m, &s)) in x.iter_mut().zip(self.mins.iter().zip(&self.sigmas)) {
            *v = (*v - m) / s;
        }
    }

    /// Returns a copy with every σ snapped to its nearest power of two —
    /// the paper prepares the normalization constants this way *during
    /// training*, so the deployed network sees exactly the feature scaling
    /// it was trained with.
    pub fn snap_to_pow2(&self) -> Self {
        let sigmas = self
            .sigmas
            .iter()
            .map(|&s| (s as f64).log2().round().exp2() as f32)
            .collect();
        Self {
            mins: self.mins.clone(),
            sigmas,
        }
    }

    /// Converts to the hardware shift form, snapping each σ to the nearest
    /// power of two.
    pub fn to_shift(&self) -> ShiftVecNormalizer {
        let exponents = self
            .sigmas
            .iter()
            .map(|&s| (s as f64).log2().round() as i32)
            .collect();
        ShiftVecNormalizer {
            mins: self.mins.clone(),
            exponents,
        }
    }
}

/// Deployment-form normalizer: per-feature `x_min` subtraction followed by
/// an arithmetic shift (σ snapped to a power of two).
///
/// The float `apply` here defines the reference semantics; the bit-exact
/// Q16.16 implementation lives in `klinq-fpga` and is tested against this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftVecNormalizer {
    mins: Vec<f32>,
    exponents: Vec<i32>,
}

impl ShiftVecNormalizer {
    /// Builds from explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_constants(mins: Vec<f32>, exponents: Vec<i32>) -> Self {
        assert_eq!(mins.len(), exponents.len(), "mins/exponents length mismatch");
        Self { mins, exponents }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Per-feature minima (the subtrahends).
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-feature shift exponents (divide by `2^e`).
    pub fn exponents(&self) -> &[i32] {
        &self.exponents
    }

    /// Normalizes one feature vector: `(x − min) / 2^e`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim(), "normalizer dimension mismatch");
        x.iter()
            .zip(self.mins.iter().zip(&self.exponents))
            .map(|(&v, (&m, &e))| (v - m) / (e as f32).exp2())
            .collect()
    }

    /// Worst-case relative error vs the exact-σ normalizer it was derived
    /// from (bounded by √2 − 1 ≈ 0.414 in log-space snap).
    pub fn max_relative_error(&self, exact: &VecNormalizer) -> f64 {
        self.exponents
            .iter()
            .zip(exact.sigmas())
            .map(|(&e, &s)| (((e as f64).exp2() - s as f64) / s as f64).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[Vec<f32>]) -> Vec<&[f32]> {
        data.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn fit_computes_min_and_sigma() {
        let data = vec![vec![1.0, -5.0], vec![3.0, -5.0], vec![5.0, -5.0]];
        let n = VecNormalizer::fit(&rows(&data)).unwrap();
        assert_eq!(n.dim(), 2);
        assert_eq!(n.mins(), &[1.0, -5.0]);
        // Column 0: var = ((−2)²+0+2²)/3 = 8/3.
        assert!((n.sigmas()[0] - (8.0f32 / 3.0).sqrt()).abs() < 1e-6);
        // Column 1 is constant → σ forced to 1.
        assert_eq!(n.sigmas()[1], 1.0);
    }

    #[test]
    fn apply_matches_formula_and_constant_features_zero() {
        let data = vec![vec![0.0, 7.0], vec![4.0, 7.0]];
        let n = VecNormalizer::fit(&rows(&data)).unwrap();
        let out = n.apply(&[4.0, 7.0]);
        assert!((out[0] - 4.0 / 2.0).abs() < 1e-6); // σ = 2
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn normalized_training_data_has_zero_min() {
        let data = vec![vec![-3.0], vec![9.0], vec![1.5]];
        let n = VecNormalizer::fit(&rows(&data)).unwrap();
        let normalized: Vec<f32> = data.iter().map(|r| n.apply(r)[0]).collect();
        let min = normalized.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min.abs() < 1e-6);
        assert!(normalized.iter().all(|&v| v >= -1e-6));
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let data = vec![vec![1.0, 2.0, 3.0], vec![4.0, 8.0, 6.0]];
        let n = VecNormalizer::fit(&rows(&data)).unwrap();
        let x = [2.5f32, 5.0, 4.5];
        let mut y = x;
        n.apply_in_place(&mut y);
        assert_eq!(y.to_vec(), n.apply(&x));
    }

    #[test]
    fn empty_dataset_is_error() {
        let err = VecNormalizer::fit(&[]).unwrap_err();
        assert_eq!(err, FitNormalizerError::EmptyDataset);
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn ragged_rows_are_error() {
        let a = vec![1.0f32, 2.0];
        let b = vec![1.0f32];
        let err = VecNormalizer::fit(&[&a, &b]).unwrap_err();
        assert_eq!(
            err,
            FitNormalizerError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_rejects_wrong_dim() {
        let n = VecNormalizer::from_constants(vec![0.0], vec![1.0]);
        let _ = n.apply(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn constants_reject_zero_sigma() {
        let _ = VecNormalizer::from_constants(vec![0.0], vec![0.0]);
    }

    #[test]
    fn shift_form_snaps_sigma_to_pow2() {
        // σ = 3 → 2^2 = 4; σ = 0.3 → 2^-2 = 0.25.
        let n = VecNormalizer::from_constants(vec![0.0, 0.0], vec![3.0, 0.3]);
        let s = n.to_shift();
        assert_eq!(s.exponents(), &[2, -2]);
        let out = s.apply(&[8.0, 1.0]);
        assert!((out[0] - 2.0).abs() < 1e-6);
        assert!((out[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn shift_error_bound_holds() {
        let sigmas: Vec<f32> = (1..50).map(|i| 0.07 * i as f32).collect();
        let mins = vec![0.0; sigmas.len()];
        let n = VecNormalizer::from_constants(mins, sigmas);
        let s = n.to_shift();
        let err = s.max_relative_error(&n);
        assert!(err <= std::f64::consts::SQRT_2 - 1.0 + 1e-6, "err = {err}");
    }

    #[test]
    fn snap_to_pow2_is_idempotent_and_matches_shift_form() {
        let n = VecNormalizer::from_constants(vec![0.0, 1.0], vec![3.0, 0.3]);
        let snapped = n.snap_to_pow2();
        assert_eq!(snapped.sigmas(), &[4.0, 0.25]);
        assert_eq!(snapped.snap_to_pow2(), snapped);
        // After snapping, the shift form is exact.
        assert_eq!(snapped.to_shift().max_relative_error(&snapped), 0.0);
        let x = [8.0f32, 2.0];
        assert_eq!(snapped.apply(&x), snapped.to_shift().apply(&x));
    }

    #[test]
    fn shift_and_exact_agree_when_sigma_is_pow2() {
        let n = VecNormalizer::from_constants(vec![1.0, -2.0], vec![4.0, 0.5]);
        let s = n.to_shift();
        let x = [9.0f32, -1.0];
        assert_eq!(n.apply(&x), s.apply(&x));
        assert_eq!(s.max_relative_error(&n), 0.0);
    }
}
