//! Interval averaging: the trace-compression front end of the students.
//!
//! The paper compresses each 500-sample (1 µs at 2 ns/sample) I or Q trace
//! by averaging over fixed intervals — 32 samples (64 ns) for the
//! high-SNR qubits (→ 15 averaged points per channel) and 5 samples (10 ns)
//! for the noisy qubits (→ 100 points per channel). Crucially the **network
//! input size is fixed**: when the readout-trace duration changes, the
//! number of samples per interval is re-derived so the averager still emits
//! the same number of outputs (Sec. III-D).
//!
//! # Summation order (float re-baselining policy)
//!
//! Every averaging kernel in this crate — scalar and SoA-batched — sums
//! each interval in the **4-way blocked order** of [`blocked_sum`]:
//! four stride-4 partial accumulators over the interval's full 4-chunks,
//! combined pairwise, plus a linear tail. This order is
//! autovectorization-friendly (the four accumulators map onto one SIMD
//! register) and is shared by every float path, so per-shot and batched
//! extraction stay bitwise-identical to each other. It *differs* from the
//! strictly linear order used before the SoA engine rework; that change
//! was a deliberate one-commit re-baseline of all float-derived golden
//! values (trained models, fidelity floors, cached fixtures — see the
//! README "Performance" section). Any future change to this order must be
//! re-baselined the same way, never papered over with loosened tolerances.

use serde::{Deserialize, Serialize};

/// Sums a slice in the canonical blocked order shared by every float
/// averaging kernel: four stride-4 partial accumulators over the full
/// 4-chunks (pairwise-combined), then the remainder added linearly.
///
/// For slices shorter than 4 this degenerates to the plain linear sum.
#[inline]
pub fn blocked_sum(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let mut tail = 0.0f32;
    for &x in chunks.remainder() {
        tail += x;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Averages a trace over contiguous intervals, emitting a fixed number of
/// outputs regardless of the trace duration.
///
/// # Examples
///
/// ```
/// use klinq_dsp::IntervalAverager;
/// // FNN-A front end: 15 outputs per channel.
/// let avg = IntervalAverager::new(15);
/// let full = avg.average(&vec![1.0; 500]);   // 1 µs trace → 32-sample groups
/// assert_eq!(full.len(), 15);
/// let short = avg.average(&vec![1.0; 250]);  // 500 ns trace → 16-sample groups
/// assert_eq!(short.len(), 15);
/// assert_eq!(avg.group_size(500), 33); // floor(500/15)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalAverager {
    outputs: usize,
}

impl IntervalAverager {
    /// Creates an averager with a fixed number of outputs.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is zero.
    pub fn new(outputs: usize) -> Self {
        assert!(outputs > 0, "IntervalAverager requires at least one output");
        Self { outputs }
    }

    /// The paper's FNN-A front end (qubits 1, 4, 5): 15 averaged points per
    /// channel (64 ns intervals on a 1 µs trace).
    pub fn fnn_a() -> Self {
        Self::new(15)
    }

    /// The paper's FNN-B front end (qubits 2, 3): 100 averaged points per
    /// channel (10 ns intervals on a 1 µs trace).
    pub fn fnn_b() -> Self {
        Self::new(100)
    }

    /// Number of outputs this averager emits.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Samples per interval for a trace of `trace_len` samples
    /// (`floor(trace_len / outputs)`, minimum 1).
    pub fn group_size(&self, trace_len: usize) -> usize {
        (trace_len / self.outputs).max(1)
    }

    /// Averages the trace into exactly `outputs` points.
    ///
    /// Uses `group = floor(len / outputs)` samples per interval; trailing
    /// samples beyond `group * outputs` are dropped, matching the paper's
    /// 500-sample → 15 × 32-sample reduction (20 samples unused). Each
    /// interval is summed in the canonical [`blocked_sum`] order.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer samples than outputs (no full interval
    /// can be formed for every output).
    pub fn average(&self, trace: &[f32]) -> Vec<f32> {
        assert!(
            trace.len() >= self.outputs,
            "trace too short to average: {} samples for {} outputs",
            trace.len(),
            self.outputs
        );
        let group = self.group_size(trace.len());
        let inv = 1.0 / group as f32;
        (0..self.outputs)
            .map(|k| {
                let start = k * group;
                blocked_sum(&trace[start..start + group]) * inv
            })
            .collect()
    }

    /// Averages into a caller-provided buffer (allocation-free hot path for
    /// the FPGA model and benches). Bitwise-identical to [`Self::average`].
    ///
    /// # Panics
    ///
    /// Panics on short traces (see [`Self::average`]) or if `out.len()`
    /// differs from [`Self::outputs`].
    pub fn average_into(&self, trace: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.outputs, "output buffer size mismatch");
        assert!(
            trace.len() >= self.outputs,
            "trace too short to average: {} samples for {} outputs",
            trace.len(),
            self.outputs
        );
        let group = self.group_size(trace.len());
        let inv = 1.0 / group as f32;
        for (k, slot) in out.iter_mut().enumerate() {
            let start = k * group;
            *slot = blocked_sum(&trace[start..start + group]) * inv;
        }
    }

    /// Lane count of the SoA batched kernels (matches
    /// [`crate::soa::TraceBatch::LANES`]).
    const LANES: usize = 4;

    /// Averages four lane-interleaved traces at once — the SoA form of
    /// [`Self::average_into`] for the cache-blocked batch engine.
    ///
    /// `channel` holds `len × 4` samples with sample `k` of lane `l` at
    /// `channel[k * 4 + l]` (see [`crate::soa::TraceBatch`]); `out` receives
    /// the `outputs × 4` averaged points in the same interleaving. Every
    /// lane's results are **bitwise-identical** to [`Self::average_into`]
    /// on that lane's de-interleaved trace: the per-lane summation order is
    /// exactly [`blocked_sum`], only the lanes run side by side (which is
    /// what lets the whole kernel vectorize across lanes).
    ///
    /// # Panics
    ///
    /// Panics if `channel.len()` is not a multiple of 4, the per-lane trace
    /// is shorter than the output count, or `out.len() != outputs * 4`.
    pub fn average_batch_into(&self, channel: &[f32], out: &mut [f32]) {
        let lanes = Self::LANES;
        assert_eq!(channel.len() % lanes, 0, "interleaved channel length mismatch");
        assert_eq!(out.len(), self.outputs * lanes, "output buffer size mismatch");
        let len = channel.len() / lanes;
        assert!(
            len >= self.outputs,
            "trace too short to average: {} samples for {} outputs",
            len,
            self.outputs
        );
        let group = self.group_size(len);
        let inv = 1.0 / group as f32;
        for (k, slot) in out.chunks_exact_mut(lanes).enumerate() {
            // Per lane, this replays blocked_sum exactly: acc[j] takes the
            // interval samples at offsets j, j+4, …, the tail is linear,
            // and the combine is pairwise.
            let base = k * group * lanes;
            let mut acc = [[0.0f32; 4]; 4];
            let interval = &channel[base..base + group * lanes];
            let mut quads = interval.chunks_exact(4 * lanes);
            for quad in &mut quads {
                for (j, sample) in quad.chunks_exact(lanes).enumerate() {
                    for l in 0..lanes {
                        acc[j][l] += sample[l];
                    }
                }
            }
            let mut tail = [0.0f32; 4];
            for sample in quads.remainder().chunks_exact(lanes) {
                for l in 0..lanes {
                    tail[l] += sample[l];
                }
            }
            for l in 0..lanes {
                slot[l] = (((acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l])) + tail[l]) * inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        // 1 µs = 500 samples/channel at 2 ns/sample.
        let a = IntervalAverager::fnn_a();
        assert_eq!(a.outputs(), 15);
        assert_eq!(a.group_size(500), 33);
        let b = IntervalAverager::fnn_b();
        assert_eq!(b.outputs(), 100);
        assert_eq!(b.group_size(500), 5);
    }

    #[test]
    fn output_len_is_constant_across_durations() {
        let a = IntervalAverager::fnn_a();
        for len in [500, 475, 375, 275, 250] {
            let out = a.average(&vec![0.5; len]);
            assert_eq!(out.len(), 15, "len={len}");
        }
    }

    #[test]
    fn averages_constant_signal_exactly() {
        let a = IntervalAverager::new(10);
        let out = a.average(&vec![3.25; 100]);
        assert!(out.iter().all(|&x| (x - 3.25).abs() < 1e-6));
    }

    #[test]
    fn averages_ramp_correctly() {
        // Ramp 0..20, 4 outputs → groups of 5: means 2, 7, 12, 17.
        let trace: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let out = IntervalAverager::new(4).average(&trace);
        assert_eq!(out, vec![2.0, 7.0, 12.0, 17.0]);
    }

    #[test]
    fn trailing_samples_are_dropped() {
        // 11 samples, 2 outputs → group 5, sample 10 unused.
        let mut trace = vec![1.0f32; 10];
        trace.push(1000.0);
        let out = IntervalAverager::new(2).average(&trace);
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn averaging_is_linear() {
        let a = IntervalAverager::new(5);
        let x: Vec<f32> = (0..50).map(|i| (i as f32 * 0.7).sin()).collect();
        let y: Vec<f32> = (0..50).map(|i| (i as f32 * 1.3).cos()).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let ax = a.average(&x);
        let ay = a.average(&y);
        let asum = a.average(&sum);
        for k in 0..5 {
            assert!((asum[k] - (ax[k] + ay[k])).abs() < 1e-5);
        }
    }

    #[test]
    fn average_into_matches_average() {
        let a = IntervalAverager::new(7);
        let trace: Vec<f32> = (0..70).map(|i| (i as f32).sqrt()).collect();
        let mut buf = vec![0.0f32; 7];
        a.average_into(&trace, &mut buf);
        assert_eq!(buf, a.average(&trace));
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_rejected() {
        let _ = IntervalAverager::new(0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_trace_rejected() {
        let _ = IntervalAverager::new(16).average(&[0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn wrong_buffer_rejected() {
        let mut buf = vec![0.0f32; 3];
        IntervalAverager::new(4).average_into(&[0.0; 16], &mut buf);
    }

    #[test]
    fn group_size_floors_at_one() {
        assert_eq!(IntervalAverager::new(10).group_size(5), 1);
    }

    #[test]
    fn blocked_sum_matches_linear_for_exact_values() {
        // Small integers are exact in f32, so any summation order agrees.
        let xs: Vec<f32> = (0..23).map(|i| i as f32).collect();
        assert_eq!(blocked_sum(&xs), xs.iter().sum::<f32>());
        assert_eq!(blocked_sum(&[]), 0.0);
        assert_eq!(blocked_sum(&[1.5]), 1.5);
    }

    /// Interleaves equal-length traces into the SoA lane layout.
    fn interleave(traces: &[Vec<f32>]) -> Vec<f32> {
        let len = traces[0].len();
        let mut out = Vec::with_capacity(len * traces.len());
        for k in 0..len {
            for t in traces {
                out.push(t[k]);
            }
        }
        out
    }

    #[test]
    fn average_batch_into_is_bitwise_identical_per_lane() {
        // Cover group sizes with and without a 4-chunk tail (group = len/outputs).
        for (outputs, len) in [(4usize, 16usize), (4, 23), (7, 71), (15, 150), (100, 150)] {
            let a = IntervalAverager::new(outputs);
            let traces: Vec<Vec<f32>> = (0..4)
                .map(|l| {
                    (0..len)
                        .map(|k| ((k * 7 + l * 13) as f32 * 0.37).sin() * 2.5)
                        .collect()
                })
                .collect();
            let channel = interleave(&traces);
            let mut batched = vec![0.0f32; outputs * 4];
            a.average_batch_into(&channel, &mut batched);
            for (l, t) in traces.iter().enumerate() {
                let mut reference = vec![0.0f32; outputs];
                a.average_into(t, &mut reference);
                for k in 0..outputs {
                    assert_eq!(
                        batched[k * 4 + l],
                        reference[k],
                        "lane {l} output {k} diverged (outputs={outputs}, len={len})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn average_batch_into_rejects_short_traces() {
        let mut out = vec![0.0f32; 16 * 4];
        IntervalAverager::new(16).average_batch_into(&[0.0; 10 * 4], &mut out);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn average_batch_into_rejects_wrong_buffer() {
        let mut out = vec![0.0f32; 3];
        IntervalAverager::new(4).average_batch_into(&vec![0.0; 16 * 4], &mut out);
    }
}
