//! Statistics helpers: moments, geometric-mean fidelity, Gaussian CDF.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(klinq_dsp::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, not `n − 1`), matching the paper's
/// matched-filter envelope definition. Returns `0.0` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    population_variance(xs).sqrt()
}

/// Geometric mean of per-qubit fidelities — the paper's primary metric:
/// `F_GM = (∏ F_i)^(1/N)`.
///
/// This penalizes outliers with low accuracy, which is why the paper also
/// reports the mean excluding the noisy qubit 2 (`F4Q`).
///
/// # Panics
///
/// Panics if `fidelities` is empty or contains a negative value.
///
/// # Examples
///
/// ```
/// let f = klinq_dsp::geometric_mean(&[0.9, 0.9, 0.9]);
/// assert!((f - 0.9).abs() < 1e-12);
/// ```
pub fn geometric_mean(fidelities: &[f64]) -> f64 {
    assert!(
        !fidelities.is_empty(),
        "geometric_mean requires at least one fidelity"
    );
    let mut log_sum = 0.0;
    for &f in fidelities {
        assert!(f >= 0.0, "geometric_mean requires non-negative fidelities, got {f}");
        if f == 0.0 {
            return 0.0;
        }
        log_sum += f.ln();
    }
    (log_sum / fidelities.len() as f64).exp()
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error 1.5e-7, plenty for fidelity calibration).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Used by the simulator calibration to predict matched-filter readout
/// fidelity from an IQ-separation SNR: `F ≈ Φ(SNR/2)` for symmetric
/// Gaussian blobs.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of [`normal_cdf`] via bisection (sufficient precision for
/// calibration; not a hot path).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");
    let (mut lo, mut hi) = (-10.0, 10.0);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Single-pass running mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use klinq_dsp::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.5);
/// assert_eq!(r.population_variance(), 1.25);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = new_mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
    }

    #[test]
    fn variance_reference() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_paper_table1() {
        // Table I, KLiNQ row: per-qubit fidelities and their means.
        let f = [0.968, 0.748, 0.929, 0.934, 0.959];
        let f5q = geometric_mean(&f);
        assert!((f5q - 0.904).abs() < 0.002, "F5Q = {f5q}");
        let f4q = geometric_mean(&[0.968, 0.929, 0.934, 0.959]);
        assert!((f4q - 0.947).abs() < 0.002, "F4Q = {f4q}");
    }

    #[test]
    fn geometric_mean_penalizes_outliers() {
        let balanced = geometric_mean(&[0.9, 0.9]);
        let outlier = geometric_mean(&[0.99, 0.81]);
        assert!(outlier < balanced);
    }

    #[test]
    fn geometric_mean_zero_short_circuits() {
        assert_eq!(geometric_mean(&[0.9, 0.0, 0.9]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn geometric_mean_rejects_empty() {
        geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn geometric_mean_rejects_negative() {
        geometric_mean(&[0.9, -0.1]);
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        for x in [0.3, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.01, 0.25, 0.5, 0.9, 0.997] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_bad_p() {
        normal_quantile(1.0);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [0.5, -1.0, 2.25, 3.0, -0.75, 10.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.population_variance() - population_variance(&xs)).abs() < 1e-12);
        assert_eq!(r.min(), -1.0);
        assert_eq!(r.max(), 10.0);
        assert_eq!(r.count(), 6);
    }

    #[test]
    fn running_merge_equals_combined() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        let mut a = Running::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Running::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.population_variance() - population_variance(&all)).abs() < 1e-9);
    }

    #[test]
    fn running_merge_with_empty() {
        let mut a = Running::new();
        a.push(5.0);
        let b = Running::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, a);
        let mut d = Running::new();
        d.merge(&a);
        assert_eq!(d.mean(), 5.0);
    }
}
