//! Matched filters with the KLiNQ envelope `mean(T0 − T1) / var(T0 − T1)`.
//!
//! The matched filter supplies the single scalar feature that the paper
//! found necessary for qubits "with subtle qubit-state-readout signal
//! differences" (Sec. III-B2). The envelope is trained once per qubit from
//! labelled ground/excited traces; at inference it is applied as a plain dot
//! product — which is why the FPGA implements it by reusing the fully
//! connected MAC datapath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when training a matched filter from unusable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainFilterError {
    /// One of the two class sets contained no traces.
    EmptyClass,
    /// Traces within one class (or across classes) have differing lengths.
    LengthMismatch {
        /// Expected sample count (from the first trace seen).
        expected: usize,
        /// Offending sample count.
        got: usize,
    },
}

impl fmt::Display for TrainFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyClass => write!(f, "matched filter training requires traces for both states"),
            Self::LengthMismatch { expected, got } => {
                write!(f, "trace length mismatch: expected {expected} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for TrainFilterError {}

/// A single-channel matched filter.
///
/// `envelope[k] = (mean_0[k] − mean_1[k]) / (var_0[k] + var_1[k] + ε)` where
/// the subscripts denote the ground-/excited-state training trace sets. The
/// denominator is the per-sample variance of the difference process
/// (independent classes), regularized by a small `ε` so zero-noise samples
/// (e.g. the trace start, before the resonator rings up) stay finite.
///
/// # Examples
///
/// ```
/// use klinq_dsp::MatchedFilter;
/// let ground: Vec<Vec<f32>> = (0..64).map(|i| vec![1.0 + 0.001 * i as f32; 8]).collect();
/// let excited: Vec<Vec<f32>> = (0..64).map(|i| vec![-1.0 - 0.001 * i as f32; 8]).collect();
/// let g: Vec<&[f32]> = ground.iter().map(|t| t.as_slice()).collect();
/// let e: Vec<&[f32]> = excited.iter().map(|t| t.as_slice()).collect();
/// let mf = MatchedFilter::train(&g, &e)?;
/// // Ground traces score positive, excited negative:
/// assert!(mf.apply(&ground[0]) > 0.0);
/// assert!(mf.apply(&excited[0]) < 0.0);
/// # Ok::<(), klinq_dsp::matched_filter::TrainFilterError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedFilter {
    envelope: Vec<f32>,
}

/// Per-sample mean and population variance over a set of equal-length traces.
fn per_sample_moments(traces: &[&[f32]]) -> Result<(Vec<f64>, Vec<f64>), TrainFilterError> {
    let first = traces.first().ok_or(TrainFilterError::EmptyClass)?;
    let len = first.len();
    let mut mean = vec![0.0f64; len];
    for t in traces {
        if t.len() != len {
            return Err(TrainFilterError::LengthMismatch {
                expected: len,
                got: t.len(),
            });
        }
        for (m, &x) in mean.iter_mut().zip(t.iter()) {
            *m += x as f64;
        }
    }
    let n = traces.len() as f64;
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; len];
    for t in traces {
        for ((v, &x), m) in var.iter_mut().zip(t.iter()).zip(mean.iter()) {
            let d = x as f64 - m;
            *v += d * d;
        }
    }
    for v in &mut var {
        *v /= n;
    }
    Ok((mean, var))
}

impl MatchedFilter {
    /// Regularizer added to the variance denominator.
    const EPS: f64 = 1e-9;

    /// Trains the envelope from ground-state (`t0`) and excited-state (`t1`)
    /// traces.
    ///
    /// # Errors
    ///
    /// Returns [`TrainFilterError::EmptyClass`] if either set is empty and
    /// [`TrainFilterError::LengthMismatch`] if any trace length differs.
    pub fn train(t0: &[&[f32]], t1: &[&[f32]]) -> Result<Self, TrainFilterError> {
        let (mean0, var0) = per_sample_moments(t0)?;
        let (mean1, var1) = per_sample_moments(t1)?;
        if mean0.len() != mean1.len() {
            return Err(TrainFilterError::LengthMismatch {
                expected: mean0.len(),
                got: mean1.len(),
            });
        }
        let envelope = mean0
            .iter()
            .zip(&mean1)
            .zip(var0.iter().zip(&var1))
            .map(|((m0, m1), (v0, v1))| ((m0 - m1) / (v0 + v1 + Self::EPS)) as f32)
            .collect();
        Ok(Self { envelope })
    }

    /// Builds a filter from a precomputed envelope (e.g. deserialized
    /// weights destined for the FPGA).
    pub fn from_envelope(envelope: Vec<f32>) -> Self {
        Self { envelope }
    }

    /// The trained envelope coefficients.
    pub fn envelope(&self) -> &[f32] {
        &self.envelope
    }

    /// Number of samples the filter expects.
    pub fn len(&self) -> usize {
        self.envelope.len()
    }

    /// `true` if the envelope is empty.
    pub fn is_empty(&self) -> bool {
        self.envelope.is_empty()
    }

    /// Applies the filter: the dot product of the envelope with the trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace.len() != self.len()`; use [`Self::apply_prefix`]
    /// when evaluating shortened readout traces.
    pub fn apply(&self, trace: &[f32]) -> f64 {
        assert_eq!(
            trace.len(),
            self.envelope.len(),
            "matched filter length mismatch"
        );
        self.envelope
            .iter()
            .zip(trace)
            .map(|(&e, &x)| e as f64 * x as f64)
            .sum()
    }

    /// Applies the filter to the common prefix of the envelope and trace —
    /// the paper's shortened-trace evaluation, where a filter trained at one
    /// duration is applied to fewer samples.
    pub fn apply_prefix(&self, trace: &[f32]) -> f64 {
        let n = trace.len().min(self.envelope.len());
        self.envelope[..n]
            .iter()
            .zip(&trace[..n])
            .map(|(&e, &x)| e as f64 * x as f64)
            .sum()
    }

    /// Lane-interleaved SoA form of [`Self::apply_prefix`] for the
    /// cache-blocked batch engine: `channel` holds `len × 4` samples with
    /// sample `k` of lane `l` at `k * 4 + l` (see
    /// [`crate::soa::TraceBatch`]).
    ///
    /// Each lane accumulates in exactly the single-trace sample order, so
    /// lane `l` is bitwise-identical to [`Self::apply_prefix`] on that
    /// lane's de-interleaved trace; the interleaved layout turns the four
    /// chains into contiguous vector loads.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len() != len * 4`.
    pub fn apply_prefix_batch(&self, channel: &[f32], len: usize) -> [f64; 4] {
        assert_eq!(channel.len(), len * 4, "interleaved channel length mismatch");
        let n = len.min(self.envelope.len());
        let mut acc = [0.0f64; 4];
        for (sample, &e) in channel[..n * 4].chunks_exact(4).zip(&self.envelope) {
            let e = e as f64;
            acc[0] += e * sample[0] as f64;
            acc[1] += e * sample[1] as f64;
            acc[2] += e * sample[2] as f64;
            acc[3] += e * sample[3] as f64;
        }
        acc
    }

    /// Windowed partial outputs: splits the trace into `windows` contiguous
    /// chunks and returns the filter's partial dot product over each.
    ///
    /// This is the feature bank used by the HERQULES baseline, which feeds
    /// time-resolved matched-filter outputs into a compact FNN.
    ///
    /// # Panics
    ///
    /// Panics if `windows == 0` or the trace length differs from the
    /// envelope length.
    pub fn apply_windowed(&self, trace: &[f32], windows: usize) -> Vec<f64> {
        assert_eq!(
            trace.len(),
            self.envelope.len(),
            "matched filter length mismatch"
        );
        self.windowed_over(trace, trace.len(), windows)
    }

    /// Windowed outputs over the common prefix of the envelope and trace —
    /// keeps the feature count fixed when evaluating shortened readout
    /// traces (later windows shrink with the trace).
    ///
    /// # Panics
    ///
    /// Panics if `windows == 0` or the common prefix is shorter than
    /// `windows` samples.
    pub fn apply_windowed_prefix(&self, trace: &[f32], windows: usize) -> Vec<f64> {
        let n = trace.len().min(self.envelope.len());
        self.windowed_over(trace, n, windows)
    }

    fn windowed_over(&self, trace: &[f32], n: usize, windows: usize) -> Vec<f64> {
        assert!(windows > 0, "windows must be positive");
        assert!(
            n >= windows,
            "trace prefix of {n} samples cannot fill {windows} windows"
        );
        let base = n / windows;
        let mut out = Vec::with_capacity(windows);
        for w in 0..windows {
            let start = w * base;
            let end = if w == windows - 1 { n } else { start + base };
            let sum: f64 = self.envelope[start..end]
                .iter()
                .zip(&trace[start..end])
                .map(|(&e, &x)| e as f64 * x as f64)
                .sum();
            out.push(sum);
        }
        out
    }
}

/// A matched filter over both readout quadratures (I and Q), producing the
/// single scalar feature appended to the student-network input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IqMatchedFilter {
    i: MatchedFilter,
    q: MatchedFilter,
}

impl IqMatchedFilter {
    /// Trains both quadrature envelopes from labelled (I, Q) trace pairs.
    ///
    /// `ground` and `excited` are slices of `(i_samples, q_samples)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainFilterError`] from either channel.
    pub fn train(
        ground: &[(&[f32], &[f32])],
        excited: &[(&[f32], &[f32])],
    ) -> Result<Self, TrainFilterError> {
        let g_i: Vec<&[f32]> = ground.iter().map(|&(i, _)| i).collect();
        let g_q: Vec<&[f32]> = ground.iter().map(|&(_, q)| q).collect();
        let e_i: Vec<&[f32]> = excited.iter().map(|&(i, _)| i).collect();
        let e_q: Vec<&[f32]> = excited.iter().map(|&(_, q)| q).collect();
        Ok(Self {
            i: MatchedFilter::train(&g_i, &e_i)?,
            q: MatchedFilter::train(&g_q, &e_q)?,
        })
    }

    /// Builds from two pre-trained single-channel filters.
    pub fn from_channels(i: MatchedFilter, q: MatchedFilter) -> Self {
        Self { i, q }
    }

    /// The I-channel filter.
    pub fn i_filter(&self) -> &MatchedFilter {
        &self.i
    }

    /// The Q-channel filter.
    pub fn q_filter(&self) -> &MatchedFilter {
        &self.q
    }

    /// Applies both envelopes and sums: one scalar per shot.
    ///
    /// # Panics
    ///
    /// Panics if the sample counts differ from the trained lengths.
    pub fn apply(&self, i: &[f32], q: &[f32]) -> f64 {
        self.i.apply(i) + self.q.apply(q)
    }

    /// Prefix variant for shortened traces (see
    /// [`MatchedFilter::apply_prefix`]).
    pub fn apply_prefix(&self, i: &[f32], q: &[f32]) -> f64 {
        self.i.apply_prefix(i) + self.q.apply_prefix(q)
    }

    /// Four-shot SoA form of [`Self::apply_prefix`] over lane-interleaved
    /// channels (see [`MatchedFilter::apply_prefix_batch`]); lane `l` is
    /// bitwise-identical to [`Self::apply_prefix`] on that lane's traces.
    ///
    /// # Panics
    ///
    /// Panics if either channel's length differs from `len * 4`.
    pub fn apply_prefix_batch(&self, i: &[f32], q: &[f32], len: usize) -> [f64; 4] {
        let ii = self.i.apply_prefix_batch(i, len);
        let qq = self.q.apply_prefix_batch(q, len);
        [ii[0] + qq[0], ii[1] + qq[1], ii[2] + qq[2], ii[3] + qq[3]]
    }

    /// Windowed variant returning `2 * windows` features (I windows then Q
    /// windows) for the HERQULES baseline.
    pub fn apply_windowed(&self, i: &[f32], q: &[f32], windows: usize) -> Vec<f64> {
        let mut out = self.i.apply_windowed(i, windows);
        out.extend(self.q.apply_windowed(q, windows));
        out
    }

    /// Prefix variant of [`Self::apply_windowed`] for shortened traces.
    pub fn apply_windowed_prefix(&self, i: &[f32], q: &[f32], windows: usize) -> Vec<f64> {
        let mut out = self.i.apply_windowed_prefix(i, windows);
        out.extend(self.q.apply_windowed_prefix(q, windows));
        out
    }

    /// Expected per-channel sample count.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// `true` if the filter was trained on empty traces.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty() && self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds n constant traces at the given level plus deterministic ripple.
    fn traces(n: usize, len: usize, level: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|k| {
                (0..len)
                    .map(|t| level + 0.01 * ((k * 7 + t * 13) % 11) as f32)
                    .collect()
            })
            .collect()
    }

    fn slices(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|t| t.as_slice()).collect()
    }

    #[test]
    fn envelope_points_from_excited_to_ground() {
        let g = traces(32, 16, 2.0);
        let e = traces(32, 16, -2.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        assert_eq!(mf.len(), 16);
        assert!(mf.envelope().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn separates_classes() {
        let g = traces(64, 32, 1.0);
        let e = traces(64, 32, -1.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        for t in &g {
            assert!(mf.apply(t) > 0.0);
        }
        for t in &e {
            assert!(mf.apply(t) < 0.0);
        }
    }

    #[test]
    fn high_variance_samples_are_downweighted() {
        // Sample 0: clean separation; sample 1: same separation, huge noise.
        let g: Vec<Vec<f32>> = (0..100)
            .map(|k| vec![1.0, 1.0 + 10.0 * ((k % 2) as f32 - 0.5)])
            .collect();
        let e: Vec<Vec<f32>> = (0..100)
            .map(|k| vec![-1.0, -1.0 + 10.0 * ((k % 2) as f32 - 0.5)])
            .collect();
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        assert!(
            mf.envelope()[0] > 10.0 * mf.envelope()[1],
            "envelope = {:?}",
            mf.envelope()
        );
    }

    #[test]
    fn empty_class_is_an_error() {
        let g = traces(4, 8, 1.0);
        let err = MatchedFilter::train(&slices(&g), &[]).unwrap_err();
        assert_eq!(err, TrainFilterError::EmptyClass);
        assert!(err.to_string().contains("both states"));
    }

    #[test]
    fn ragged_traces_are_an_error() {
        let a = vec![1.0f32; 8];
        let b = vec![1.0f32; 7];
        let err = MatchedFilter::train(&[&a, &b], &[&a]).unwrap_err();
        assert_eq!(
            err,
            TrainFilterError::LengthMismatch {
                expected: 8,
                got: 7
            }
        );
    }

    #[test]
    fn cross_class_length_mismatch_is_an_error() {
        let a = vec![1.0f32; 8];
        let b = vec![-1.0f32; 6];
        let err = MatchedFilter::train(&[&a], &[&b]).unwrap_err();
        assert!(matches!(err, TrainFilterError::LengthMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_panics_on_wrong_length() {
        let g = traces(4, 8, 1.0);
        let e = traces(4, 8, -1.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        let _ = mf.apply(&[0.0; 4]);
    }

    #[test]
    fn apply_prefix_uses_common_prefix() {
        let g = traces(16, 8, 1.0);
        let e = traces(16, 8, -1.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        let short = vec![1.0f32; 4];
        let manual: f64 = mf.envelope()[..4].iter().map(|&w| w as f64).sum();
        assert!((mf.apply_prefix(&short) - manual).abs() < 1e-9);
        // Longer trace than envelope also works (extra samples ignored).
        let long = vec![1.0f32; 20];
        let full: f64 = mf.envelope().iter().map(|&w| w as f64).sum();
        assert!((mf.apply_prefix(&long) - full).abs() < 1e-9);
    }

    #[test]
    fn windowed_sums_to_full_output() {
        let g = traces(16, 10, 1.0);
        let e = traces(16, 10, -1.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        let t = &g[3];
        for windows in [1, 2, 3, 5, 10] {
            let parts = mf.apply_windowed(t, windows);
            assert_eq!(parts.len(), windows);
            let total: f64 = parts.iter().sum();
            assert!(
                (total - mf.apply(t)).abs() < 1e-9,
                "windows={windows}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "windows must be positive")]
    fn windowed_rejects_zero_windows() {
        let mf = MatchedFilter::from_envelope(vec![1.0; 4]);
        let _ = mf.apply_windowed(&[0.0; 4], 0);
    }

    #[test]
    fn apply_prefix_batch_is_bitwise_identical_per_lane() {
        let g = traces(16, 24, 1.0);
        let e = traces(16, 24, -1.0);
        let mf = MatchedFilter::train(&slices(&g), &slices(&e)).unwrap();
        // Cover prefixes shorter than, equal to, and longer than the envelope.
        for len in [8usize, 24, 30] {
            let lanes: Vec<Vec<f32>> = (0..4)
                .map(|l| (0..len).map(|k| ((k * 3 + l) as f32 * 0.21).cos()).collect())
                .collect();
            let mut channel = vec![0.0f32; len * 4];
            for k in 0..len {
                for l in 0..4 {
                    channel[k * 4 + l] = lanes[l][k];
                }
            }
            let batched = mf.apply_prefix_batch(&channel, len);
            for l in 0..4 {
                assert_eq!(batched[l], mf.apply_prefix(&lanes[l]), "lane {l} len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "interleaved channel length mismatch")]
    fn apply_prefix_batch_rejects_bad_length() {
        let mf = MatchedFilter::from_envelope(vec![1.0; 4]);
        let _ = mf.apply_prefix_batch(&[0.0; 9], 4);
    }

    #[test]
    fn iq_filter_combines_channels() {
        let gi = traces(32, 8, 1.0);
        let gq = traces(32, 8, 0.5);
        let ei = traces(32, 8, -1.0);
        let eq = traces(32, 8, -0.5);
        let ground: Vec<(&[f32], &[f32])> = gi
            .iter()
            .zip(&gq)
            .map(|(i, q)| (i.as_slice(), q.as_slice()))
            .collect();
        let excited: Vec<(&[f32], &[f32])> = ei
            .iter()
            .zip(&eq)
            .map(|(i, q)| (i.as_slice(), q.as_slice()))
            .collect();
        let mf = IqMatchedFilter::train(&ground, &excited).unwrap();
        assert_eq!(mf.len(), 8);
        assert!(!mf.is_empty());
        assert!(mf.apply(&gi[0], &gq[0]) > 0.0);
        assert!(mf.apply(&ei[0], &eq[0]) < 0.0);
        // apply == i.apply + q.apply
        let want = mf.i_filter().apply(&gi[0]) + mf.q_filter().apply(&gq[0]);
        assert!((mf.apply(&gi[0], &gq[0]) - want).abs() < 1e-12);
        // Windowed returns 2 * windows features.
        assert_eq!(mf.apply_windowed(&gi[0], &gq[0], 4).len(), 8);
        // Prefix variant accepts shortened traces.
        let _ = mf.apply_prefix(&gi[0][..4], &gq[0][..4]);
    }
}
