//! Property-based tests for the DSP blocks.

use klinq_dsp::{
    geometric_mean, mean, population_variance, FeaturePipeline, FeatureSpec, IntervalAverager,
    MatchedFilter, TraceBatch, VecNormalizer,
};
use proptest::prelude::*;

fn trace(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len..=len)
}

/// Fits a small pipeline on deterministic toy classes (`m` averaged
/// points per channel, training traces of `train_len` samples).
fn fitted_pipeline(m: usize, train_len: usize) -> FeaturePipeline {
    let make = |level: f32| -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..12)
            .map(|k| {
                let ripple = 0.07 * ((k % 5) as f32 - 2.0);
                let i: Vec<f32> = (0..train_len)
                    .map(|t| level + ripple + 0.03 * ((t % 7) as f32))
                    .collect();
                let q: Vec<f32> = (0..train_len)
                    .map(|t| -level + 0.02 * ((t % 3) as f32))
                    .collect();
                (i, q)
            })
            .collect()
    };
    let (g, e) = (make(1.0), make(-1.0));
    let gr: Vec<(&[f32], &[f32])> = g.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
    let er: Vec<(&[f32], &[f32])> = e.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
    FeaturePipeline::fit(
        FeatureSpec {
            avg_outputs_per_channel: m,
        },
        &gr,
        &er,
    )
    .expect("toy pipeline fits")
}

proptest! {
    #[test]
    fn averaging_preserves_constant_signals(
        level in -50.0f32..50.0,
        outputs in 1usize..20,
        extra in 0usize..40
    ) {
        let len = outputs * 3 + extra;
        let avg = IntervalAverager::new(outputs);
        let out = avg.average(&vec![level; len]);
        prop_assert_eq!(out.len(), outputs);
        for v in out {
            prop_assert!((v - level).abs() < 1e-4);
        }
    }

    #[test]
    fn averaging_is_bounded_by_input_range(xs in trace(64), outputs in 1usize..16) {
        let avg = IntervalAverager::new(outputs);
        let lo = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in avg.average(&xs) {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    #[test]
    fn averaging_output_count_is_duration_invariant(
        outputs in 1usize..16,
        len_a in 32usize..200,
        len_b in 32usize..200
    ) {
        prop_assume!(len_a >= outputs && len_b >= outputs);
        let avg = IntervalAverager::new(outputs);
        prop_assert_eq!(avg.average(&vec![1.0; len_a]).len(), outputs);
        prop_assert_eq!(avg.average(&vec![1.0; len_b]).len(), outputs);
    }

    #[test]
    fn averaging_commutes_with_scaling(xs in trace(60), scale in -4.0f32..4.0) {
        let avg = IntervalAverager::new(6);
        let scaled: Vec<f32> = xs.iter().map(|&x| x * scale).collect();
        let a = avg.average(&scaled);
        let b: Vec<f32> = avg.average(&xs).iter().map(|&x| x * scale).collect();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn normalizer_maps_training_minimum_to_zero(
        rows in prop::collection::vec(trace(8), 2..20)
    ) {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let n = VecNormalizer::fit(&refs).unwrap();
        let normalized: Vec<Vec<f32>> = rows.iter().map(|r| n.apply(r)).collect();
        for dim in 0..8 {
            let min = normalized
                .iter()
                .map(|r| r[dim])
                .fold(f32::INFINITY, f32::min);
            prop_assert!(min.abs() < 1e-3, "dim {dim} min {min}");
        }
    }

    #[test]
    fn normalizer_is_affine(rows in prop::collection::vec(trace(4), 3..10), x in trace(4)) {
        // apply(a) - apply(b) == (a - b) / sigma elementwise.
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let n = VecNormalizer::fit(&refs).unwrap();
        let a = n.apply(&x);
        let shifted: Vec<f32> = x.iter().map(|&v| v + 1.0).collect();
        let b = n.apply(&shifted);
        for ((va, vb), &s) in a.iter().zip(&b).zip(n.sigmas()) {
            prop_assert!((vb - va - 1.0 / s).abs() < 1e-2);
        }
    }

    #[test]
    fn matched_filter_output_is_linear_in_trace(
        g in prop::collection::vec(trace(16), 4..12),
        e in prop::collection::vec(trace(16), 4..12),
        a in trace(16),
        b in trace(16)
    ) {
        let gr: Vec<&[f32]> = g.iter().map(|t| t.as_slice()).collect();
        let er: Vec<&[f32]> = e.iter().map(|t| t.as_slice()).collect();
        let mf = MatchedFilter::train(&gr, &er).unwrap();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let lhs = mf.apply(&sum);
        let rhs = mf.apply(&a) + mf.apply(&b);
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!(((lhs - rhs) / scale).abs() < 1e-3);
    }

    #[test]
    fn windowed_mf_sums_to_full_output(
        g in prop::collection::vec(trace(24), 4..10),
        e in prop::collection::vec(trace(24), 4..10),
        x in trace(24),
        windows in 1usize..8
    ) {
        let gr: Vec<&[f32]> = g.iter().map(|t| t.as_slice()).collect();
        let er: Vec<&[f32]> = e.iter().map(|t| t.as_slice()).collect();
        let mf = MatchedFilter::train(&gr, &er).unwrap();
        let total: f64 = mf.apply_windowed(&x, windows).iter().sum();
        let full = mf.apply(&x);
        let scale = 1.0 + full.abs();
        prop_assert!(((total - full) / scale).abs() < 1e-6);
    }

    #[test]
    fn extract_into_is_bitwise_identical_across_trace_lengths(
        m in 2usize..10,
        extra in 0usize..120,
        (ia, qa) in (trace(256), trace(256))
    ) {
        // Train at one duration, extract at another (the mid-circuit
        // pattern): the zero-copy path must match the allocating one
        // bit for bit at every length.
        let pipe = fitted_pipeline(m, 3 * m + 24);
        let len = (m + extra).min(256);
        let (i, q) = (&ia[..len], &qa[..len]);
        let reference = pipe.extract(i, q);
        let mut buf = vec![0.0f32; pipe.input_dim()];
        pipe.extract_into(i, q, &mut buf);
        prop_assert_eq!(&buf, &reference);
        pipe.extract_raw_into(i, q, &mut buf);
        prop_assert_eq!(&buf, &pipe.extract_raw(i, q));
    }

    #[test]
    fn fused_soa_extract_is_bitwise_identical_per_lane(
        m in 2usize..10,
        extra in 0usize..60,
        traces in prop::collection::vec(trace(128), 8)
    ) {
        // The fused SoA front end (gather -> averaging + MF + normalize
        // in one cache-blocked pass) must match the scalar allocating
        // reference bit for bit on every lane, at every trace length
        // from the averager minimum up (the mid-circuit pattern).
        let pipe = fitted_pipeline(m, 3 * m + 12);
        let len = (m + extra).min(128);
        let pairs: [(&[f32], &[f32]); 4] =
            core::array::from_fn(|s| (&traces[2 * s][..len], &traces[2 * s + 1][..len]));
        let mut batch = TraceBatch::new();
        prop_assert!(batch.gather(pairs));
        let mut rows = vec![vec![0.0f32; pipe.input_dim()]; 4];
        {
            let [r0, r1, r2, r3] = &mut rows[..] else { unreachable!() };
            pipe.extract_batch_into(
                &batch,
                [&mut r0[..], &mut r1[..], &mut r2[..], &mut r3[..]],
                &mut Vec::new(),
            );
        }
        for (row, &(i, q)) in rows.iter().zip(&pairs) {
            prop_assert_eq!(row, &pipe.extract(i, q));
        }
    }

    #[test]
    fn soa_matched_filter_matches_scalar_at_any_length(
        len in 8usize..64,
        envelope_len in 8usize..64,
        xs in prop::collection::vec(trace(64), 4),
        (g, e) in (prop::collection::vec(trace(48), 4..8), prop::collection::vec(trace(48), 4..8))
    ) {
        // Prefixes shorter than, equal to, and longer than the envelope:
        // every lane of the interleaved kernel must equal the scalar
        // apply_prefix bitwise (f64).
        let gr: Vec<&[f32]> = g.iter().map(|t| &t[..envelope_len.min(48)]).collect();
        let er: Vec<&[f32]> = e.iter().map(|t| &t[..envelope_len.min(48)]).collect();
        let mf = MatchedFilter::train(&gr, &er).unwrap();
        let cut: [&[f32]; 4] = core::array::from_fn(|s| &xs[s][..len]);
        let mut channel = vec![0.0f32; len * 4];
        for k in 0..len {
            for (l, t) in cut.iter().enumerate() {
                channel[k * 4 + l] = t[k];
            }
        }
        let batched = mf.apply_prefix_batch(&channel, len);
        for (s, t) in cut.iter().enumerate() {
            prop_assert_eq!(batched[s], mf.apply_prefix(t));
        }
    }

    #[test]
    fn geometric_mean_bounds(fs in prop::collection::vec(0.01f64..1.0, 1..10)) {
        let gm = geometric_mean(&fs);
        let lo = fs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = fs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(gm >= lo - 1e-12 && gm <= hi + 1e-12);
        // And never exceeds the arithmetic mean.
        let am: f64 = fs.iter().sum::<f64>() / fs.len() as f64;
        prop_assert!(gm <= am + 1e-12);
    }

    #[test]
    fn variance_is_translation_invariant(xs in prop::collection::vec(-50.0f64..50.0, 2..64), c in -10.0f64..10.0) {
        let shifted: Vec<f64> = xs.iter().map(|&x| x + c).collect();
        prop_assert!((population_variance(&xs) - population_variance(&shifted)).abs() < 1e-6);
        prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-9);
    }
}
