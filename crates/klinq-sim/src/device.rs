//! The five-qubit device preset and crosstalk model.

use crate::calibrate::calibrate_sigma;
use crate::config::SimConfig;
use crate::qubit::QubitCalibration;
use crate::trajectory::{mean_trajectory_vec, StateEvolution};
use serde::{Deserialize, Serialize};

/// Number of qubits on the simulated processor.
pub const NUM_QUBITS: usize = 5;

/// A frequency-multiplexed five-qubit readout device.
///
/// `crosstalk[i][j]` is the fraction of qubit `j`'s clean resonator signal
/// that leaks into qubit `i`'s digitized trace (diagonal is zero). In an
/// independent (per-qubit) readout the neighbours' states are unknown, so
/// this leakage acts as state-dependent interference — the mechanism
/// behind the paper's observation that independent readout "always
/// underperforms compared to the large network for the five-qubit system".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiveQubitDevice {
    qubits: Vec<QubitCalibration>,
    crosstalk: [[f64; NUM_QUBITS]; NUM_QUBITS],
}

impl FiveQubitDevice {
    /// Builds a device from explicit calibrations and a crosstalk matrix.
    ///
    /// # Panics
    ///
    /// Panics if there are not exactly [`NUM_QUBITS`] calibrations, any
    /// calibration is invalid, or the crosstalk diagonal is non-zero.
    pub fn new(
        qubits: Vec<QubitCalibration>,
        crosstalk: [[f64; NUM_QUBITS]; NUM_QUBITS],
    ) -> Self {
        assert_eq!(qubits.len(), NUM_QUBITS, "expected {NUM_QUBITS} qubits");
        for q in &qubits {
            q.validate();
        }
        for (i, row) in crosstalk.iter().enumerate() {
            assert_eq!(row[i], 0.0, "crosstalk diagonal must be zero (qubit {i})");
        }
        Self { qubits, crosstalk }
    }

    /// The paper-calibrated preset.
    ///
    /// Per-qubit noise is solved analytically so the predicted
    /// matched-filter fidelity at 1 µs matches the paper's Table I KLiNQ
    /// row: `[0.968, 0.748, 0.929, 0.934, 0.959]`. The remaining physics
    /// parameters shape the Table II duration behaviour:
    ///
    /// - **Q1**: slow ring-up, long T1 → fidelity rises with duration.
    /// - **Q2**: small IQ separation plus the strongest incoming crosstalk
    ///   → the noisy outlier around 0.75.
    /// - **Q3**: fast ring-up, accuracy capped by preparation errors →
    ///   nearly flat across durations.
    /// - **Q4**: intermediate; mild decline at short traces.
    /// - **Q5**: fast ring-up with a comparatively short T1 → best
    ///   fidelity at *shorter* traces (the paper's green-highlighted
    ///   optimum below 1 µs).
    pub fn paper() -> Self {
        let config = SimConfig::default();
        // Calibration targets for the *analytic matched-filter* predictor.
        // They differ from the paper's KLiNQ fidelities by fixed empirical
        // offsets measured once at the `quick` experiment scale: a trained
        // (empirical) discriminator gives a little back to the idealized
        // filter on the crosstalk-heavy qubits, and wins a little on the
        // decay-heavy qubit 5 by recognising mid-trace relaxation. With
        // these offsets the measured KLiNQ row lands on the paper's
        // [0.968, 0.748, 0.929, 0.934, 0.959].
        let targets = [0.969, 0.762, 0.933, 0.945, 0.951];
        let mut protos = vec![
            QubitCalibration {
                ground_iq: (1.0, 0.30),
                excited_iq: (-1.0, -0.30),
                ring_up_ns: 100.0,
                noise_sigma: 1.0,
                t1_ns: 40_000.0,
                prep_error: 0.012,
                signal_tau_ns: Some(1100.0),
            },
            QubitCalibration {
                ground_iq: (0.45, 0.20),
                excited_iq: (-0.45, -0.20),
                ring_up_ns: 100.0,
                noise_sigma: 1.0,
                t1_ns: 20_000.0,
                prep_error: 0.02,
                signal_tau_ns: Some(900.0),
            },
            QubitCalibration {
                ground_iq: (0.9, -0.5),
                excited_iq: (-0.9, 0.5),
                ring_up_ns: 40.0,
                noise_sigma: 1.0,
                t1_ns: 100_000.0,
                prep_error: 0.065,
                signal_tau_ns: Some(250.0),
            },
            QubitCalibration {
                ground_iq: (0.8, 0.6),
                excited_iq: (-0.8, -0.6),
                ring_up_ns: 120.0,
                noise_sigma: 1.0,
                t1_ns: 18_000.0,
                prep_error: 0.018,
                signal_tau_ns: Some(700.0),
            },
            QubitCalibration {
                ground_iq: (1.1, 0.2),
                excited_iq: (-1.1, -0.2),
                ring_up_ns: 45.0,
                noise_sigma: 1.0,
                t1_ns: 4_200.0,
                prep_error: 0.004,
                signal_tau_ns: Some(1500.0),
            },
        ];
        // Nearest-neighbour-ish crosstalk; qubit 2 (index 1) receives the
        // strongest interference, as in the measured device.
        let mut crosstalk = [[0.0f64; NUM_QUBITS]; NUM_QUBITS];
        let pairs: [(usize, usize, f64); 8] = [
            (0, 1, 0.04),
            (1, 0, 0.16),
            (1, 2, 0.18),
            (2, 1, 0.05),
            (2, 3, 0.04),
            (3, 2, 0.05),
            (3, 4, 0.04),
            (4, 3, 0.03),
        ];
        for (i, j, v) in pairs {
            crosstalk[i][j] = v;
        }

        // Calibrate noise with the crosstalk interference of the
        // *prototype* neighbours (their separations are fixed above, so
        // this is self-consistent and order-independent).
        let proto_device = Self {
            qubits: protos.clone(),
            crosstalk,
        };
        for (i, target) in targets.iter().enumerate() {
            let betas = proto_device.crosstalk_interference(i, &config);
            protos[i].noise_sigma = calibrate_sigma(&protos[i], &config, &betas, *target);
        }
        Self::new(protos, crosstalk)
    }

    /// Per-qubit calibrations.
    pub fn qubits(&self) -> &[QubitCalibration] {
        &self.qubits
    }

    /// One qubit's calibration.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_QUBITS`.
    pub fn qubit(&self, idx: usize) -> &QubitCalibration {
        &self.qubits[idx]
    }

    /// The crosstalk matrix (`[into][from]`).
    pub fn crosstalk(&self) -> &[[f64; NUM_QUBITS]; NUM_QUBITS] {
        &self.crosstalk
    }

    /// Matched-filter interference projections from crosstalk into qubit
    /// `into`, one entry per coupled neighbour.
    ///
    /// A neighbour `j` in a random state contributes `±λ·Δ_j(t)/2` on top
    /// of a harmless deterministic midpoint. Projected onto qubit `into`'s
    /// matched-filter axis (whose weights are its own separation signal
    /// `Δ_own`), the statistic shift is
    /// `β_j = λ_ij/2 · Σ_t [ΔI_own·ΔI_j + ΔQ_own·ΔQ_j]`.
    ///
    /// These feed [`crate::calibrate::predict_mf_fidelity`], which averages
    /// the Gaussian error over all `±β_j` sign combinations.
    pub fn crosstalk_interference(&self, into: usize, config: &SimConfig) -> Vec<f64> {
        let n = config.samples();
        if n == 0 {
            return Vec::new();
        }
        let own = &self.qubits[into];
        let (ogi, ogq) = mean_trajectory_vec(own, config, StateEvolution::Ground);
        let (oei, oeq) = mean_trajectory_vec(own, config, StateEvolution::Excited);
        let mut betas = Vec::new();
        for (j, neighbour) in self.qubits.iter().enumerate() {
            let lambda = self.crosstalk[into][j];
            if lambda == 0.0 {
                continue;
            }
            let (gi, gq) = mean_trajectory_vec(neighbour, config, StateEvolution::Ground);
            let (ei, eq) = mean_trajectory_vec(neighbour, config, StateEvolution::Excited);
            let mut proj = 0.0f64;
            for k in 0..n {
                let d_own_i = (oei[k] - ogi[k]) as f64;
                let d_own_q = (oeq[k] - ogq[k]) as f64;
                let d_j_i = (ei[k] - gi[k]) as f64;
                let d_j_q = (eq[k] - gq[k]) as f64;
                proj += d_own_i * d_j_i + d_own_q * d_j_q;
            }
            betas.push(lambda / 2.0 * proj);
        }
        betas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::predict_mf_fidelity;

    #[test]
    fn paper_preset_is_valid_and_deterministic() {
        let d1 = FiveQubitDevice::paper();
        let d2 = FiveQubitDevice::paper();
        assert_eq!(d1, d2);
        assert_eq!(d1.qubits().len(), NUM_QUBITS);
    }

    #[test]
    fn paper_preset_predicted_fidelities_match_calibration_targets() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::default();
        // The analytic-predictor targets (paper Table I values plus the
        // documented empirical offsets; see `paper()`).
        let targets = [0.969, 0.762, 0.933, 0.945, 0.951];
        for (i, &target) in targets.iter().enumerate() {
            let betas = device.crosstalk_interference(i, &config);
            let f = predict_mf_fidelity(device.qubit(i), &config, &betas);
            assert!(
                (f - target).abs() < 1e-3,
                "qubit {}: predicted {f:.4}, target {target}",
                i + 1
            );
        }
    }

    #[test]
    fn qubit2_is_the_noisy_outlier() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::default();
        // Q2 has the lowest steady SNR and the most incoming crosstalk.
        let _ = config;
        let snr2 = device.qubit(1).steady_snr();
        for i in [0, 2, 3, 4] {
            let snr = device.qubit(i).steady_snr();
            assert!(snr > snr2, "qubit {} SNR {snr} vs Q2 {snr2}", i + 1);
        }
        let xt_in: Vec<f64> = (0..NUM_QUBITS)
            .map(|i| device.crosstalk()[i].iter().sum())
            .collect();
        assert!(xt_in[1] > xt_in[0] && xt_in[1] > xt_in[2]);
    }

    #[test]
    fn qubit5_peaks_below_one_microsecond() {
        let device = FiveQubitDevice::paper();
        let f = |dur: f64| {
            let cfg = SimConfig::with_duration_ns(dur);
            let betas = device.crosstalk_interference(4, &cfg);
            predict_mf_fidelity(device.qubit(4), &cfg, &betas)
        };
        let at_1000 = f(1000.0);
        let best_short = [550.0, 750.0, 950.0]
            .iter()
            .map(|&d| f(d))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_short > at_1000,
            "Q5 should peak below 1 µs: best short {best_short:.4} vs 1 µs {at_1000:.4}"
        );
    }

    #[test]
    fn qubit1_improves_with_duration() {
        let device = FiveQubitDevice::paper();
        let f = |dur: f64| {
            let cfg = SimConfig::with_duration_ns(dur);
            let betas = device.crosstalk_interference(0, &cfg);
            predict_mf_fidelity(device.qubit(0), &cfg, &betas)
        };
        assert!(f(1000.0) > f(500.0));
    }

    #[test]
    fn qubit3_is_flat_across_durations() {
        let device = FiveQubitDevice::paper();
        let f = |dur: f64| {
            let cfg = SimConfig::with_duration_ns(dur);
            let betas = device.crosstalk_interference(2, &cfg);
            predict_mf_fidelity(device.qubit(2), &cfg, &betas)
        };
        assert!((f(1000.0) - f(500.0)).abs() < 0.01);
    }

    #[test]
    fn crosstalk_interference_is_empty_without_coupling() {
        let device = FiveQubitDevice::new(
            vec![QubitCalibration::default(); NUM_QUBITS],
            [[0.0; NUM_QUBITS]; NUM_QUBITS],
        );
        let config = SimConfig::default();
        for i in 0..NUM_QUBITS {
            assert!(device.crosstalk_interference(i, &config).is_empty());
        }
        // The paper preset couples into every qubit.
        let paper = FiveQubitDevice::paper();
        for i in 0..NUM_QUBITS {
            assert!(!paper.crosstalk_interference(i, &config).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "diagonal must be zero")]
    fn rejects_self_crosstalk() {
        let mut xt = [[0.0; NUM_QUBITS]; NUM_QUBITS];
        xt[2][2] = 0.1;
        let _ = FiveQubitDevice::new(vec![QubitCalibration::default(); NUM_QUBITS], xt);
    }

    #[test]
    #[should_panic(expected = "expected 5 qubits")]
    fn rejects_wrong_qubit_count() {
        let _ = FiveQubitDevice::new(
            vec![QubitCalibration::default(); 3],
            [[0.0; NUM_QUBITS]; NUM_QUBITS],
        );
    }
}
