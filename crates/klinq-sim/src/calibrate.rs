//! Analytic matched-filter fidelity prediction and noise calibration.
//!
//! The simulator must land its per-qubit readout fidelities near the
//! paper's Table I. Rather than tuning by hand, each qubit's noise σ is
//! solved by bisection against an analytic predictor of the matched-filter
//! assignment fidelity, which accounts for:
//!
//! - the ring-up-shaped separation signal (per-sample SNR accumulation),
//! - extra effective variance from readout crosstalk,
//! - mid-trace T1 decay (integrated over the exponential decay-time
//!   distribution), and
//! - state-preparation errors.
//!
//! The predictor is also exported on its own ([`predict_mf_fidelity`]) —
//! the simulator tests verify Monte-Carlo fidelities against it, which
//! pins the generator and the theory to each other.

use crate::config::SimConfig;
use crate::qubit::QubitCalibration;
use crate::trajectory::{mean_trajectory_vec, StateEvolution};
use klinq_dsp::stats::normal_cdf;

/// Predicted matched-filter assignment fidelity for one qubit.
///
/// `interference` holds one entry per crosstalk neighbour: the projection
/// `β_j = λ_ij/2 · Σ_t Δ_own(t)·Δ_j(t)` of that neighbour's half-separation
/// signal onto the matched-filter axis (see
/// [`crate::device::FiveQubitDevice::crosstalk_interference`]). With the
/// neighbour states unknown and uniform, the filter statistic is shifted by
/// `±β_j` with equal probability, so the Gaussian error is averaged over
/// all `2^k` sign combinations — this is exactly what independent readout
/// suffers from frequency-multiplexed crosstalk.
///
/// The rest of the model: an optimal matched filter on white noise achieves
/// `SNR² = Σ_t (ΔI(t)² + ΔQ(t)²) / σ²`; the no-decay assignment fidelity is
/// `Φ(SNR/2)` (interference-shifted as above). A shot that decays at time
/// `t_d` retains a fraction `ρ(t_d)` of the filter's signal mass and is
/// classified correctly with probability `Φ(SNR·(ρ − ½))`; the
/// excited-state fidelity integrates that over the exponential decay-time
/// distribution. Preparation errors mix the class fidelities symmetrically.
pub fn predict_mf_fidelity(
    calib: &QubitCalibration,
    config: &SimConfig,
    interference: &[f64],
) -> f64 {
    calib.validate();
    assert!(
        interference.len() <= 16,
        "interference enumeration supports at most 16 neighbours"
    );
    let n = config.samples();
    if n == 0 {
        return 0.5;
    }
    let (gi, gq) = mean_trajectory_vec(calib, config, StateEvolution::Ground);
    let (ei, eq) = mean_trajectory_vec(calib, config, StateEvolution::Excited);

    // Per-sample squared separation and its cumulative mass.
    let mut mass = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for k in 0..n {
        let di = (ei[k] - gi[k]) as f64;
        let dq = (eq[k] - gq[k]) as f64;
        total += di * di + dq * dq;
        mass.push(total);
    }
    if total <= 0.0 {
        return 0.5;
    }
    let sigma_stat = calib.noise_sigma * total.sqrt();
    let snr = total.sqrt() / calib.noise_sigma;

    // Interference shifts in SNR units, averaged over neighbour states.
    let combos = 1usize << interference.len();
    let shifts: Vec<f64> = (0..combos)
        .map(|bits| {
            interference
                .iter()
                .enumerate()
                .map(|(j, &beta)| {
                    if bits >> j & 1 == 1 {
                        beta / sigma_stat
                    } else {
                        -beta / sigma_stat
                    }
                })
                .sum()
        })
        .collect();
    let avg_phi = |x: f64| -> f64 {
        shifts.iter().map(|&b| normal_cdf(x + b)).sum::<f64>() / combos as f64
    };

    let f_gauss = avg_phi(snr / 2.0);

    // Ground shots never decay in this model.
    let f0 = f_gauss;

    // Excited shots: integrate the decay-time distribution sample by
    // sample. P(decay in sample k) = e^{-t_k/T1} − e^{-t_{k+1}/T1}.
    let dt = config.sample_period_ns;
    let t1 = calib.t1_ns;
    let mut f1 = 0.0f64;
    for (k, &mass_k) in mass.iter().enumerate() {
        let t_lo = k as f64 * dt;
        let t_hi = t_lo + dt;
        let p_decay = (-t_lo / t1).exp() - (-t_hi / t1).exp();
        if p_decay <= 0.0 {
            continue;
        }
        let rho = mass_k / total;
        f1 += p_decay * avg_phi(snr * (rho - 0.5));
    }
    // Survived the whole trace.
    f1 += (-(n as f64) * dt / t1).exp() * f_gauss;

    // Preparation errors flip the actual initial state.
    let p = calib.prep_error;
    let f0_label = (1.0 - p) * f0 + p * (1.0 - f1);
    let f1_label = (1.0 - p) * f1 + p * (1.0 - f0);
    0.5 * (f0_label + f1_label)
}

/// Solves for the noise σ that makes [`predict_mf_fidelity`] hit
/// `target_fidelity`, by bisection.
///
/// Returns the calibrated σ. All other fields of `calib` are used as-is.
///
/// # Panics
///
/// Panics if `target_fidelity` is not in `(0.5, 1.0)` or is unreachable
/// even at negligible noise (e.g. decay/preparation errors already cost
/// more than the target allows).
pub fn calibrate_sigma(
    calib: &QubitCalibration,
    config: &SimConfig,
    interference: &[f64],
    target_fidelity: f64,
) -> f64 {
    assert!(
        // klinq-lint: allow(stat-floor-locality) argument validation: 0.5 is the chance bound, not a tunable floor
        target_fidelity > 0.5 && target_fidelity < 1.0,
        "target fidelity must be in (0.5, 1), got {target_fidelity}"
    );
    let fidelity_at = |sigma: f64| {
        let c = QubitCalibration {
            noise_sigma: sigma,
            ..*calib
        };
        predict_mf_fidelity(&c, config, interference)
    };
    let mut lo = 1e-4; // ~noise-free
    let mut hi = 1e4; // hopeless
    let best = fidelity_at(lo);
    assert!(
        best >= target_fidelity,
        "target fidelity {target_fidelity} unreachable: decay/prep errors cap it at {best:.4}"
    );
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection: σ spans decades
        if fidelity_at(mid) >= target_fidelity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_calib() -> QubitCalibration {
        QubitCalibration {
            ground_iq: (1.0, 0.4),
            excited_iq: (-1.0, -0.4),
            ring_up_ns: 80.0,
            noise_sigma: 2.0,
            // Effectively no decay: isolates the Gaussian-overlap part of
            // the model in tests that are not about T1.
            t1_ns: 5e8,
            prep_error: 0.0,
            signal_tau_ns: None,
        }
    }

    #[test]
    fn noiseless_long_t1_is_near_perfect() {
        let c = QubitCalibration {
            noise_sigma: 0.01,
            ..base_calib()
        };
        let f = predict_mf_fidelity(&c, &SimConfig::default(), &[]);
        // klinq-lint: allow(stat-floor-locality) sanity bound for a near-noiseless channel, not a tunable policy floor
        assert!(f > 0.9999, "f = {f}");
    }

    #[test]
    fn infinite_noise_is_coin_flip() {
        let c = QubitCalibration {
            noise_sigma: 1e6,
            ..base_calib()
        };
        let f = predict_mf_fidelity(&c, &SimConfig::default(), &[]);
        assert!((f - 0.5).abs() < 1e-3, "f = {f}");
    }

    #[test]
    fn fidelity_is_monotone_in_noise() {
        let cfg = SimConfig::default();
        let mut prev = 1.0;
        for sigma in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let c = QubitCalibration {
                noise_sigma: sigma,
                ..base_calib()
            };
            let f = predict_mf_fidelity(&c, &cfg, &[]);
            assert!(f < prev, "sigma={sigma}: {f} !< {prev}");
            prev = f;
        }
    }

    #[test]
    fn fidelity_grows_with_duration_without_decay() {
        let c = QubitCalibration {
            noise_sigma: 20.0,
            ..base_calib()
        };
        let f_short = predict_mf_fidelity(&c, &SimConfig::with_duration_ns(300.0), &[]);
        let f_long = predict_mf_fidelity(&c, &SimConfig::with_duration_ns(1000.0), &[]);
        assert!(f_long > f_short, "{f_short} vs {f_long}");
    }

    #[test]
    fn short_t1_creates_an_interior_optimum() {
        // With strong SNR and aggressive decay, a longer trace eventually
        // hurts: decays accumulate while SNR saturates. This is the paper's
        // Table II effect (qubit 5 peaks below 1 µs).
        let c = QubitCalibration {
            noise_sigma: 12.0,
            ring_up_ns: 30.0,
            t1_ns: 12_000.0,
            ..base_calib()
        };
        let durations = [300.0, 550.0, 1000.0, 2000.0, 4000.0];
        let fs: Vec<f64> = durations
            .iter()
            .map(|&d| predict_mf_fidelity(&c, &SimConfig::with_duration_ns(d), &[]))
            .collect();
        let best = fs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(best > 0 && best < durations.len() - 1, "fidelities: {fs:?}");
    }

    #[test]
    fn prep_error_caps_fidelity() {
        let c = QubitCalibration {
            noise_sigma: 0.01,
            prep_error: 0.035,
            ..base_calib()
        };
        let f = predict_mf_fidelity(&c, &SimConfig::default(), &[]);
        assert!((f - 0.965).abs() < 1e-3, "f = {f}");
    }

    #[test]
    fn interference_reduces_fidelity_symmetrically() {
        let c = QubitCalibration {
            noise_sigma: 4.0,
            ..base_calib()
        };
        let cfg = SimConfig::default();
        let clean = predict_mf_fidelity(&c, &cfg, &[]);
        let disturbed = predict_mf_fidelity(&c, &cfg, &[300.0]);
        assert!(disturbed < clean, "{disturbed} !< {clean}");
        // Sign of the projection is irrelevant (states are symmetric).
        let negated = predict_mf_fidelity(&c, &cfg, &[-300.0]);
        assert!((disturbed - negated).abs() < 1e-12);
        // Two neighbours hurt more than one.
        let two = predict_mf_fidelity(&c, &cfg, &[300.0, 300.0]);
        assert!(two < disturbed);
    }

    #[test]
    fn calibration_hits_targets() {
        let cfg = SimConfig::default();
        for target in [0.75, 0.90, 0.935, 0.968] {
            let sigma = calibrate_sigma(&base_calib(), &cfg, &[], target);
            let c = QubitCalibration {
                noise_sigma: sigma,
                ..base_calib()
            };
            let f = predict_mf_fidelity(&c, &cfg, &[]);
            assert!((f - target).abs() < 1e-4, "target {target}: got {f}");
        }
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn calibration_rejects_impossible_targets() {
        let c = QubitCalibration {
            prep_error: 0.1, // caps fidelity at 0.9
            ..base_calib()
        };
        let _ = calibrate_sigma(&c, &SimConfig::default(), &[], 0.99);
    }

    #[test]
    #[should_panic(expected = "target fidelity must be in")]
    fn calibration_rejects_bad_target() {
        let _ = calibrate_sigma(&base_calib(), &SimConfig::default(), &[], 0.4);
    }
}
