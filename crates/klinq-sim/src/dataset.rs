//! Multiplexed readout-shot generation and labelled per-qubit views.

use crate::config::SimConfig;
use crate::device::{FiveQubitDevice, NUM_QUBITS};
use crate::noise::GaussianSource;
use crate::trajectory::{mean_trajectory, StateEvolution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One qubit's digitized readout record: in-phase and quadrature samples.
#[derive(Debug, Clone, PartialEq)]
pub struct IqTrace {
    /// In-phase samples.
    pub i: Vec<f32>,
    /// Quadrature samples.
    pub q: Vec<f32>,
}

impl IqTrace {
    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }

    /// Flattens to the teacher-network input layout: all I samples
    /// followed by all Q samples (the paper's "flattened into 1000
    /// inputs" for 1 µs traces).
    pub fn flatten(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.i.len() + self.q.len());
        v.extend_from_slice(&self.i);
        v.extend_from_slice(&self.q);
        v
    }

    /// Flattens only the first `samples` of each channel (shortened-trace
    /// evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `samples` exceeds the trace length.
    pub fn flatten_prefix(&self, samples: usize) -> Vec<f32> {
        assert!(samples <= self.len(), "prefix longer than trace");
        let mut v = Vec::with_capacity(2 * samples);
        v.extend_from_slice(&self.i[..samples]);
        v.extend_from_slice(&self.q[..samples]);
        v
    }
}

/// One multiplexed readout shot: all five qubits measured simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct Shot {
    /// Prepared state per qubit (the assignment label).
    pub prepared: [bool; NUM_QUBITS],
    /// What actually happened (preparation errors, decays).
    pub evolutions: [StateEvolution; NUM_QUBITS],
    /// Digitized trace per qubit.
    pub traces: Vec<IqTrace>,
}

/// Borrowed `(i, q)` trace pairs, one per shot.
pub type TracePairs<'a> = Vec<(&'a [f32], &'a [f32])>;

/// A set of simulated readout shots plus the timing they were taken with.
///
/// Mirrors the paper's dataset structure: shots cycle through all 32
/// qubit-state permutations so every configuration is equally represented.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadoutDataset {
    config: SimConfig,
    shots: Vec<Shot>,
}

impl ReadoutDataset {
    /// Generates `n_shots` multiplexed shots.
    ///
    /// Prepared states cycle deterministically through all `2^5 = 32`
    /// permutations; everything stochastic (noise, decay times,
    /// preparation errors) derives from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_shots` is zero or the config yields no samples.
    pub fn generate(
        device: &FiveQubitDevice,
        config: &SimConfig,
        n_shots: usize,
        seed: u64,
    ) -> Self {
        assert!(n_shots > 0, "n_shots must be positive");
        let n = config.samples();
        assert!(n > 0, "config yields zero samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noise = GaussianSource::new(StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9)));

        // Reusable buffers for the five clean (noise-free) trajectories.
        let mut clean_i = vec![vec![0.0f32; n]; NUM_QUBITS];
        let mut clean_q = vec![vec![0.0f32; n]; NUM_QUBITS];

        let mut shots = Vec::with_capacity(n_shots);
        for s in 0..n_shots {
            let perm = s % 32;
            let mut prepared = [false; NUM_QUBITS];
            let mut evolutions = [StateEvolution::Ground; NUM_QUBITS];
            for qb in 0..NUM_QUBITS {
                prepared[qb] = (perm >> qb) & 1 == 1;
                let calib = device.qubit(qb);
                let actual = prepared[qb] ^ (rng.gen::<f64>() < calib.prep_error);
                evolutions[qb] = if !actual {
                    StateEvolution::Ground
                } else {
                    // Exponential decay time; only matters if inside trace.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let t_d = -calib.t1_ns * u.ln();
                    if t_d < config.trace_duration_ns {
                        StateEvolution::DecayedAt(t_d)
                    } else {
                        StateEvolution::Excited
                    }
                };
                mean_trajectory(
                    calib,
                    config,
                    evolutions[qb],
                    &mut clean_i[qb],
                    &mut clean_q[qb],
                );
            }

            // Crosstalk mixing + noise.
            let xt = device.crosstalk();
            let mut traces = Vec::with_capacity(NUM_QUBITS);
            for qb in 0..NUM_QUBITS {
                let mut i_buf = clean_i[qb].clone();
                let mut q_buf = clean_q[qb].clone();
                for (j, &lambda) in xt[qb].iter().enumerate() {
                    if lambda == 0.0 {
                        continue;
                    }
                    let lam = lambda as f32;
                    for k in 0..n {
                        i_buf[k] += lam * clean_i[j][k];
                        q_buf[k] += lam * clean_q[j][k];
                    }
                }
                let sigma = device.qubit(qb).noise_sigma;
                noise.add_noise(&mut i_buf, sigma);
                noise.add_noise(&mut q_buf, sigma);
                traces.push(IqTrace { i: i_buf, q: q_buf });
            }

            shots.push(Shot {
                prepared,
                evolutions,
                traces,
            });
        }
        Self {
            config: *config,
            shots,
        }
    }

    /// Number of shots.
    pub fn len(&self) -> usize {
        self.shots.len()
    }

    /// `true` if the dataset holds no shots (cannot occur post-generation).
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// The timing configuration the shots were generated with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Samples per channel per trace.
    pub fn samples(&self) -> usize {
        self.config.samples()
    }

    /// All shots.
    pub fn shots(&self) -> &[Shot] {
        &self.shots
    }

    /// One shot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn shot(&self, idx: usize) -> &Shot {
        &self.shots[idx]
    }

    /// Borrow of qubit `qb`'s trace in shot `shot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn qubit_trace(&self, shot: usize, qb: usize) -> (&[f32], &[f32]) {
        let t = &self.shots[shot].traces[qb];
        (&t.i, &t.q)
    }

    /// All of qubit `qb`'s traces, shot-ordered, as `(i, q)` slice pairs.
    ///
    /// # Panics
    ///
    /// Panics if `qb >= NUM_QUBITS`.
    pub fn qubit_pairs(&self, qb: usize) -> Vec<(&[f32], &[f32])> {
        self.shots
            .iter()
            .map(|s| {
                let t = &s.traces[qb];
                (t.i.as_slice(), t.q.as_slice())
            })
            .collect()
    }

    /// Qubit `qb`'s assignment labels (prepared state as 0.0/1.0),
    /// shot-ordered.
    ///
    /// # Panics
    ///
    /// Panics if `qb >= NUM_QUBITS`.
    pub fn qubit_labels(&self, qb: usize) -> Vec<f32> {
        self.shots
            .iter()
            .map(|s| if s.prepared[qb] { 1.0 } else { 0.0 })
            .collect()
    }

    /// Splits qubit `qb`'s traces by prepared state:
    /// `(ground_pairs, excited_pairs)`.
    ///
    /// # Panics
    ///
    /// Panics if `qb >= NUM_QUBITS`.
    pub fn class_split(&self, qb: usize) -> (TracePairs<'_>, TracePairs<'_>) {
        let mut ground = Vec::new();
        let mut excited = Vec::new();
        for s in &self.shots {
            let t = &s.traces[qb];
            let pair = (t.i.as_slice(), t.q.as_slice());
            if s.prepared[qb] {
                excited.push(pair);
            } else {
                ground.push(pair);
            }
        }
        (ground, excited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_dsp::MatchedFilter;

    fn small_dataset(n: usize, seed: u64) -> (FiveQubitDevice, ReadoutDataset) {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::default();
        let data = ReadoutDataset::generate(&device, &config, n, seed);
        (device, data)
    }

    #[test]
    fn shapes_and_determinism() {
        let (_, d1) = small_dataset(64, 3);
        let (_, d2) = small_dataset(64, 3);
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 64);
        assert!(!d1.is_empty());
        assert_eq!(d1.samples(), 500);
        let (i, q) = d1.qubit_trace(5, 2);
        assert_eq!(i.len(), 500);
        assert_eq!(q.len(), 500);
        let (_, d3) = small_dataset(64, 4);
        assert_ne!(d1, d3);
    }

    #[test]
    fn permutations_are_balanced() {
        let (_, data) = small_dataset(320, 1);
        // Each of the 32 permutations appears exactly 10 times.
        let mut counts = [0usize; 32];
        for s in data.shots() {
            let mut perm = 0usize;
            for (qb, &p) in s.prepared.iter().enumerate() {
                if p {
                    perm |= 1 << qb;
                }
            }
            counts[perm] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
        // Per-qubit labels are balanced too.
        for qb in 0..NUM_QUBITS {
            let ones: f32 = data.qubit_labels(qb).iter().sum();
            assert_eq!(ones, 160.0);
        }
    }

    #[test]
    fn class_split_matches_labels() {
        let (_, data) = small_dataset(96, 7);
        for qb in 0..NUM_QUBITS {
            let (g, e) = data.class_split(qb);
            let labels = data.qubit_labels(qb);
            let ones = labels.iter().filter(|&&l| l == 1.0).count();
            assert_eq!(e.len(), ones);
            assert_eq!(g.len(), labels.len() - ones);
        }
    }

    #[test]
    fn flatten_layout() {
        let t = IqTrace {
            i: vec![1.0, 2.0],
            q: vec![3.0, 4.0],
        };
        assert_eq!(t.flatten(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.flatten_prefix(1), vec![1.0, 3.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "prefix longer")]
    fn flatten_prefix_checks_bounds() {
        let t = IqTrace {
            i: vec![1.0],
            q: vec![2.0],
        };
        let _ = t.flatten_prefix(2);
    }

    /// End-to-end statistical check: a matched filter trained on the
    /// simulated data discriminates each qubit at roughly the fidelity the
    /// analytic calibration model predicts — this ties the generator and
    /// the theory to each other. (An *empirically trained* filter gives
    /// away a few percent to the idealized one on the crosstalk-heavy
    /// qubit 2; the trained neural discriminators recover that margin,
    /// which is the paper's point. The Table I comparison therefore lives
    /// in the klinq-core experiments, not here.)
    #[test]
    fn matched_filter_fidelity_tracks_calibration_targets() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::default();
        let train = ReadoutDataset::generate(&device, &config, 2_048, 11);
        let test = ReadoutDataset::generate(&device, &config, 2_048, 12);
        let mut measured = [0.0f64; NUM_QUBITS];
        let targets: Vec<f64> = (0..NUM_QUBITS)
            .map(|qb| {
                let betas = device.crosstalk_interference(qb, &config);
                crate::calibrate::predict_mf_fidelity(device.qubit(qb), &config, &betas)
            })
            .collect();
        for (qb, &target) in targets.iter().enumerate() {
            let (g, e) = train.class_split(qb);
            let g_i: Vec<&[f32]> = g.iter().map(|&(i, _)| i).collect();
            let e_i: Vec<&[f32]> = e.iter().map(|&(i, _)| i).collect();
            let g_q: Vec<&[f32]> = g.iter().map(|&(_, q)| q).collect();
            let e_q: Vec<&[f32]> = e.iter().map(|&(_, q)| q).collect();
            let mf_i = MatchedFilter::train(&g_i, &e_i).unwrap();
            let mf_q = MatchedFilter::train(&g_q, &e_q).unwrap();
            // Threshold at the midpoint of the class means on train data.
            let score = |i: &[f32], q: &[f32]| mf_i.apply(i) + mf_q.apply(q);
            let mean_g: f64 = g.iter().map(|&(i, q)| score(i, q)).sum::<f64>() / g.len() as f64;
            let mean_e: f64 = e.iter().map(|&(i, q)| score(i, q)).sum::<f64>() / e.len() as f64;
            let thresh = 0.5 * (mean_g + mean_e);
            let excited_is_low = mean_e < mean_g;
            let mut correct = 0usize;
            let labels = test.qubit_labels(qb);
            for (shot, &label) in labels.iter().enumerate() {
                let (i, q) = test.qubit_trace(shot, qb);
                let s = score(i, q);
                let classified_excited = if excited_is_low { s < thresh } else { s > thresh };
                if classified_excited == (label == 1.0) {
                    correct += 1;
                }
            }
            let fidelity = correct as f64 / labels.len() as f64;
            measured[qb] = fidelity;
            assert!(
                (fidelity - target).abs() < 0.07,
                "qubit {}: MC fidelity {fidelity:.3} vs predicted {target:.3}",
                qb + 1
            );
        }
        // Shape assertions mirroring the paper: Q2 is the clear outlier,
        // the rest discriminate at 0.90+.
        for qb in [0, 2, 3, 4] {
            assert!(measured[qb] > 0.90, "qubit {}: {:.3}", qb + 1, measured[qb]);
            assert!(
                measured[qb] > measured[1] + 0.1,
                "qubit {} should dominate qubit 2",
                qb + 1
            );
        }
        assert!(measured[1] > 0.62 && measured[1] < 0.80, "Q2 = {:.3}", measured[1]);
    }

    #[test]
    fn excited_shots_decay_at_plausible_rate() {
        let (device, data) = small_dataset(640, 21);
        // Qubit 5 has the shortest T1; count decays among excited preps.
        let t1 = device.qubit(4).t1_ns;
        let expected = 1.0 - (-1000.0 / t1).exp();
        let mut excited = 0usize;
        let mut decayed = 0usize;
        for s in data.shots() {
            if s.prepared[4] {
                excited += 1;
                if matches!(s.evolutions[4], StateEvolution::DecayedAt(_)) {
                    decayed += 1;
                }
            }
        }
        let rate = decayed as f64 / excited as f64;
        assert!(
            (rate - expected).abs() < 0.05,
            "decay rate {rate:.3} vs expected {expected:.3}"
        );
    }
}
