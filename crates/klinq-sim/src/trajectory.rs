//! Noise-free mean IQ trajectories, including mid-trace relaxation.
//!
//! With the qubit frozen in a state `s`, the resonator response approaches
//! the state's steady-state IQ point exponentially:
//! `μ_s(t) = P_s · (1 − e^{−t/τ})` (driving starts at t = 0 from the
//! origin). If an excited qubit relaxes at time `t_d`, the response decays
//! from its current value toward the ground steady state with the same
//! resonator time constant — this produces the characteristic "bent"
//! traces that make early decays hard to classify and motivates the
//! paper's observation that longer traces do not always help.

use crate::config::SimConfig;
use crate::qubit::QubitCalibration;

/// What happened to the qubit state during one readout shot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateEvolution {
    /// Qubit stayed in |0⟩ for the whole trace.
    Ground,
    /// Qubit stayed in |1⟩ for the whole trace.
    Excited,
    /// Qubit started in |1⟩ and relaxed to |0⟩ at the given time (ns).
    DecayedAt(f64),
}

impl StateEvolution {
    /// The state the trajectory started in.
    pub fn initial_state(&self) -> bool {
        !matches!(self, Self::Ground)
    }
}

/// Writes the noise-free mean trajectory for the given evolution into
/// `(i_out, q_out)`.
///
/// # Panics
///
/// Panics if the output slices differ in length from `config.samples()`.
pub fn mean_trajectory(
    calib: &QubitCalibration,
    config: &SimConfig,
    evolution: StateEvolution,
    i_out: &mut [f32],
    q_out: &mut [f32],
) {
    let n = config.samples();
    assert_eq!(i_out.len(), n, "i buffer length mismatch");
    assert_eq!(q_out.len(), n, "q buffer length mismatch");
    let tau = calib.ring_up_ns;
    let (gi, gq) = calib.ground_iq;
    let (ei, eq) = calib.excited_iq;

    match evolution {
        // Envelope applied after the match; see the end of this function.
        StateEvolution::Ground => {
            for k in 0..n {
                let r = 1.0 - (-config.sample_time_ns(k) / tau).exp();
                i_out[k] = (gi * r) as f32;
                q_out[k] = (gq * r) as f32;
            }
        }
        StateEvolution::Excited => {
            for k in 0..n {
                let r = 1.0 - (-config.sample_time_ns(k) / tau).exp();
                i_out[k] = (ei * r) as f32;
                q_out[k] = (eq * r) as f32;
            }
        }
        StateEvolution::DecayedAt(t_d) => {
            // Response at the decay instant (still on the excited path).
            let r_d = 1.0 - (-t_d / tau).exp();
            let (id, qd) = (ei * r_d, eq * r_d);
            for k in 0..n {
                let t = config.sample_time_ns(k);
                if t < t_d {
                    let r = 1.0 - (-t / tau).exp();
                    i_out[k] = (ei * r) as f32;
                    q_out[k] = (eq * r) as f32;
                } else {
                    // Relax from (id, qd) toward the ground *transient*
                    // target: the resonator now follows the ground-state
                    // dynamics with a displaced initial condition.
                    let dt = t - t_d;
                    let decay = (-dt / tau).exp();
                    let rg = 1.0 - (-t / tau).exp();
                    let (g_i, g_q) = (gi * rg, gq * rg);
                    let rg_d = 1.0 - (-t_d / tau).exp();
                    let (g_id, g_qd) = (gi * rg_d, gq * rg_d);
                    i_out[k] = (g_i + (id - g_id) * decay) as f32;
                    q_out[k] = (g_q + (qd - g_qd) * decay) as f32;
                }
            }
        }
    }

    if let Some(tau_sig) = calib.signal_tau_ns {
        for k in 0..n {
            let env = (-config.sample_time_ns(k) / tau_sig).exp() as f32;
            i_out[k] *= env;
            q_out[k] *= env;
        }
    }
}

/// Convenience allocation variant of [`mean_trajectory`].
pub fn mean_trajectory_vec(
    calib: &QubitCalibration,
    config: &SimConfig,
    evolution: StateEvolution,
) -> (Vec<f32>, Vec<f32>) {
    let n = config.samples();
    let mut i = vec![0.0f32; n];
    let mut q = vec![0.0f32; n];
    mean_trajectory(calib, config, evolution, &mut i, &mut q);
    (i, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calib() -> QubitCalibration {
        QubitCalibration {
            ground_iq: (2.0, 1.0),
            excited_iq: (-2.0, -1.0),
            ring_up_ns: 100.0,
            ..QubitCalibration::default()
        }
    }

    #[test]
    fn ground_approaches_steady_state() {
        let cfg = SimConfig::default();
        let (i, q) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::Ground);
        // Early: near zero (resonator empty).
        assert!(i[0].abs() < 0.1);
        // Late (t = 999 ns ≈ 10 τ): within 0.1% of steady state.
        assert!((i[499] - 2.0).abs() < 0.01);
        assert!((q[499] - 1.0).abs() < 0.01);
        // Monotone ring-up.
        assert!(i.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn excited_goes_the_other_way() {
        let cfg = SimConfig::default();
        let (i, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::Excited);
        assert!((i[499] + 2.0).abs() < 0.01);
    }

    #[test]
    fn decay_bends_toward_ground() {
        let cfg = SimConfig::default();
        let (i_dec, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::DecayedAt(300.0));
        let (i_exc, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::Excited);
        let (i_gnd, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::Ground);
        // Before decay: identical to excited path.
        for k in 0..149 {
            assert!((i_dec[k] - i_exc[k]).abs() < 1e-6, "k={k}");
        }
        // Long after decay (t − t_d ≳ 5 τ): close to ground path.
        for k in 450..500 {
            assert!((i_dec[k] - i_gnd[k]).abs() < 0.1, "k={k}");
        }
        // Transition is continuous (no jump at the decay sample).
        let k_d = 150; // first sample past 300 ns
        assert!((i_dec[k_d] - i_dec[k_d - 1]).abs() < 0.2);
    }

    #[test]
    fn decay_at_trace_end_is_indistinguishable_from_excited() {
        let cfg = SimConfig::default();
        let (i_dec, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::DecayedAt(999.5));
        let (i_exc, _) = mean_trajectory_vec(&calib(), &cfg, StateEvolution::Excited);
        for k in 0..500 {
            assert!((i_dec[k] - i_exc[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn initial_state_reporting() {
        assert!(!StateEvolution::Ground.initial_state());
        assert!(StateEvolution::Excited.initial_state());
        assert!(StateEvolution::DecayedAt(10.0).initial_state());
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn rejects_wrong_buffers() {
        let cfg = SimConfig::default();
        let mut i = vec![0.0; 10];
        let mut q = vec![0.0; 500];
        mean_trajectory(&calib(), &cfg, StateEvolution::Ground, &mut i, &mut q);
    }
}
