//! Per-qubit readout calibration parameters.

use serde::{Deserialize, Serialize};

/// Physical calibration of one qubit's dispersive readout.
///
/// The readout resonator's steady-state response sits at a different point
/// in the IQ plane depending on the qubit state; the response approaches
/// that point exponentially with time constant [`Self::ring_up_ns`]
/// (resonator linewidth κ/2). White Gaussian noise of standard deviation
/// [`Self::noise_sigma`] rides on every sample of both quadratures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitCalibration {
    /// Steady-state (I, Q) response with the qubit in |0⟩ (arbitrary units).
    pub ground_iq: (f64, f64),
    /// Steady-state (I, Q) response with the qubit in |1⟩.
    pub excited_iq: (f64, f64),
    /// Resonator ring-up time constant in ns.
    pub ring_up_ns: f64,
    /// Per-sample white-noise standard deviation (each quadrature).
    pub noise_sigma: f64,
    /// Qubit energy-relaxation time T1 in ns (decay of |1⟩ during readout).
    pub t1_ns: f64,
    /// Probability that state preparation left the qubit in the wrong
    /// state (label noise floor, symmetric).
    pub prep_error: f64,
    /// Optional exponential envelope (time constant, ns) applied to the
    /// whole resonator response: `e^{−t/τ_sig}`.
    ///
    /// Models readout pulses whose discriminating signal is front-loaded
    /// (e.g. transient chi-shift before the steady state washes out), which
    /// is what makes some qubits' fidelity insensitive to — or even peak
    /// below — the full trace duration (paper Table II). `None` disables
    /// the envelope.
    pub signal_tau_ns: Option<f64>,
}

impl QubitCalibration {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-physical (non-positive time
    /// constants or noise, probabilities outside `[0, 0.5]`).
    pub fn validate(&self) {
        assert!(self.ring_up_ns > 0.0, "ring-up time must be positive");
        assert!(self.noise_sigma > 0.0, "noise sigma must be positive");
        assert!(self.t1_ns > 0.0, "T1 must be positive");
        assert!(
            (0.0..=0.5).contains(&self.prep_error),
            "prep error must be in [0, 0.5]"
        );
        if let Some(tau) = self.signal_tau_ns {
            assert!(tau > 0.0, "signal envelope time constant must be positive");
        }
    }

    /// Euclidean separation of the steady-state IQ points.
    pub fn steady_separation(&self) -> f64 {
        let di = self.excited_iq.0 - self.ground_iq.0;
        let dq = self.excited_iq.1 - self.ground_iq.1;
        (di * di + dq * dq).sqrt()
    }

    /// Crude single-number SNR: steady separation over noise.
    pub fn steady_snr(&self) -> f64 {
        self.steady_separation() / self.noise_sigma
    }
}

impl Default for QubitCalibration {
    fn default() -> Self {
        Self {
            ground_iq: (1.0, 0.5),
            excited_iq: (-1.0, -0.5),
            ring_up_ns: 100.0,
            noise_sigma: 1.0,
            t1_ns: 10_000.0,
            prep_error: 0.005,
            signal_tau_ns: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        QubitCalibration::default().validate();
    }

    #[test]
    fn separation_is_euclidean() {
        let c = QubitCalibration {
            ground_iq: (0.0, 0.0),
            excited_iq: (3.0, 4.0),
            ..QubitCalibration::default()
        };
        assert_eq!(c.steady_separation(), 5.0);
        assert_eq!(c.steady_snr(), 5.0);
    }

    #[test]
    #[should_panic(expected = "T1 must be positive")]
    fn rejects_bad_t1() {
        QubitCalibration {
            t1_ns: 0.0,
            ..QubitCalibration::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "prep error")]
    fn rejects_bad_prep_error() {
        QubitCalibration {
            prep_error: 0.7,
            ..QubitCalibration::default()
        }
        .validate();
    }
}
