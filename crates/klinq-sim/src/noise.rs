//! Seeded Gaussian noise generation (Box–Muller).
//!
//! `rand` provides only uniform sampling without the `rand_distr`
//! companion crate; the polar Box–Muller transform below is all the
//! simulator needs and keeps the dependency footprint at the approved
//! list.

use rand::rngs::StdRng;
use rand::Rng;

/// A buffered standard-normal sampler over a seeded RNG.
///
/// # Examples
///
/// ```
/// use klinq_sim::noise::GaussianSource;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut src = GaussianSource::new(StdRng::seed_from_u64(1));
/// let samples: Vec<f64> = (0..1000).map(|_| src.sample()).collect();
/// let mean: f64 = samples.iter().sum::<f64>() / 1000.0;
/// assert!(mean.abs() < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianSource {
    rng: StdRng,
    spare: Option<f64>,
}

impl GaussianSource {
    /// Wraps a seeded RNG.
    pub fn new(rng: StdRng) -> Self {
        Self { rng, spare: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Polar (Marsaglia) Box–Muller: rejection-samples the unit disk.
        loop {
            let u: f64 = self.rng.gen_range(-1.0..1.0);
            let v: f64 = self.rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draws one sample scaled to the given standard deviation.
    pub fn sample_scaled(&mut self, sigma: f64) -> f64 {
        self.sample() * sigma
    }

    /// Adds `sigma`-scaled noise to every element of `buf`.
    pub fn add_noise(&mut self, buf: &mut [f32], sigma: f64) {
        for x in buf {
            *x += (self.sample() * sigma) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(n: usize, seed: u64) -> Vec<f64> {
        let mut src = GaussianSource::new(StdRng::seed_from_u64(seed));
        (0..n).map(|_| src.sample()).collect()
    }

    #[test]
    fn moments_match_standard_normal() {
        let xs = samples(200_000, 42);
        let n = xs.len() as f64;
        let mean: f64 = xs.iter().sum::<f64>() / n;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let skew: f64 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt: f64 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn tail_probabilities_are_gaussian() {
        let xs = samples(200_000, 7);
        let beyond_2sigma = xs.iter().filter(|x| x.abs() > 2.0).count() as f64 / xs.len() as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((beyond_2sigma - 0.0455).abs() < 0.005, "{beyond_2sigma}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(samples(100, 5), samples(100, 5));
        assert_ne!(samples(100, 5), samples(100, 6));
    }

    #[test]
    fn scaled_sampling_and_buffer_noise() {
        let mut src = GaussianSource::new(StdRng::seed_from_u64(9));
        let xs: Vec<f64> = (0..50_000).map(|_| src.sample_scaled(3.0)).collect();
        let var: f64 = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        assert!((var - 9.0).abs() < 0.3, "var {var}");

        let mut buf = vec![10.0f32; 50_000];
        let mut src2 = GaussianSource::new(StdRng::seed_from_u64(10));
        src2.add_noise(&mut buf, 0.5);
        let mean: f64 = buf.iter().map(|&x| x as f64).sum::<f64>() / buf.len() as f64;
        assert!((mean - 10.0).abs() < 0.02);
        let var: f64 = buf.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }
}
