//! Five-qubit dispersive-readout trace simulator.
//!
//! The KLiNQ paper trains and evaluates on real measurements from the
//! five-qubit superconducting processor of Lienhard et al. (32 qubit-state
//! permutations, I/Q traces digitized at 2 ns per sample). That dataset is
//! not redistributable, so this crate provides a physics-guided synthetic
//! equivalent that exercises the same discrimination code paths:
//!
//! - state-dependent resonator **ring-up trajectories** in the IQ plane
//!   ([`trajectory`]),
//! - additive white **Gaussian noise** per sample ([`noise`]),
//! - mid-trace **T1 relaxation** of excited qubits and state-preparation
//!   errors ([`trajectory::StateEvolution`]),
//! - frequency-multiplexed **crosstalk** between qubits ([`device`]),
//! - an **analytic matched-filter fidelity predictor** used to calibrate
//!   per-qubit noise so the simulated readout fidelities land near the
//!   paper's Table I ([`calibrate`]).
//!
//! The top-level entry point is [`dataset::ReadoutDataset::generate`],
//! which produces multiplexed shots for a [`device::FiveQubitDevice`].
//!
//! # Examples
//!
//! ```
//! use klinq_sim::{FiveQubitDevice, ReadoutDataset, SimConfig};
//!
//! let device = FiveQubitDevice::paper();
//! let config = SimConfig::default(); // 1 µs at 2 ns/sample
//! let data = ReadoutDataset::generate(&device, &config, 64, 7);
//! assert_eq!(data.len(), 64);
//! let (i, q) = data.qubit_trace(0, 2); // shot 0, qubit 2
//! assert_eq!(i.len(), 500);
//! assert_eq!(q.len(), 500);
//! ```

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod config;
pub mod dataset;
pub mod device;
pub mod noise;
pub mod qubit;
pub mod trajectory;

pub use calibrate::{calibrate_sigma, predict_mf_fidelity};
pub use config::SimConfig;
pub use dataset::{IqTrace, ReadoutDataset, Shot};
pub use device::FiveQubitDevice;
pub use qubit::QubitCalibration;
