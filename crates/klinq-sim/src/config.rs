//! Simulation timing configuration.

use serde::{Deserialize, Serialize};

/// Timing parameters of a simulated readout.
///
/// Defaults match the paper's digitization: 2 ns per sample, 1 µs traces
/// (500 samples per quadrature, flattened to 1000 network inputs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// ADC sample period in nanoseconds.
    pub sample_period_ns: f64,
    /// Readout-trace duration in nanoseconds.
    pub trace_duration_ns: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            sample_period_ns: 2.0,
            trace_duration_ns: 1000.0,
        }
    }
}

impl SimConfig {
    /// Creates a config with the default 2 ns sampling and the given trace
    /// duration.
    ///
    /// # Panics
    ///
    /// Panics if `trace_duration_ns` is not positive.
    pub fn with_duration_ns(trace_duration_ns: f64) -> Self {
        assert!(trace_duration_ns > 0.0, "trace duration must be positive");
        Self {
            trace_duration_ns,
            ..Self::default()
        }
    }

    /// Samples per quadrature channel (`floor(duration / period)`).
    pub fn samples(&self) -> usize {
        (self.trace_duration_ns / self.sample_period_ns) as usize
    }

    /// Timestamp (ns) of sample `k`, at the interval midpoint.
    pub fn sample_time_ns(&self, k: usize) -> f64 {
        (k as f64 + 0.5) * self.sample_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.samples(), 500);
        assert_eq!(c.sample_period_ns, 2.0);
    }

    #[test]
    fn duration_sweep_sample_counts() {
        // The paper's Table II durations.
        for (ns, want) in [(1000.0, 500), (950.0, 475), (750.0, 375), (550.0, 275), (500.0, 250)] {
            assert_eq!(SimConfig::with_duration_ns(ns).samples(), want, "{ns} ns");
        }
    }

    #[test]
    fn sample_times_are_midpoints() {
        let c = SimConfig::default();
        assert_eq!(c.sample_time_ns(0), 1.0);
        assert_eq!(c.sample_time_ns(499), 999.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_duration() {
        let _ = SimConfig::with_duration_ns(0.0);
    }
}
