//! Property-based tests for the readout simulator.

use klinq_sim::calibrate::predict_mf_fidelity;
use klinq_sim::trajectory::{mean_trajectory_vec, StateEvolution};
use klinq_sim::{QubitCalibration, SimConfig};
use proptest::prelude::*;

fn calibration() -> impl Strategy<Value = QubitCalibration> {
    (
        0.2f64..2.0,   // separation scale
        -1.0f64..1.0,  // q component
        20.0f64..300.0, // ring-up
        0.5f64..20.0,  // noise
        2_000.0f64..100_000.0, // t1
        0.0f64..0.05,  // prep error
    )
        .prop_map(|(sep, q, ring, noise, t1, prep)| QubitCalibration {
            ground_iq: (sep, q * sep),
            excited_iq: (-sep, -q * sep),
            ring_up_ns: ring,
            noise_sigma: noise,
            t1_ns: t1,
            prep_error: prep,
            signal_tau_ns: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predicted_fidelity_is_a_probability(calib in calibration()) {
        let f = predict_mf_fidelity(&calib, &SimConfig::default(), &[]);
        prop_assert!((0.5 - 1e-9..=1.0).contains(&f), "f = {f}");
    }

    #[test]
    fn more_noise_never_helps_without_decay(calib in calibration()) {
        // Monotonicity in noise holds in the decay-free regime. (With T1
        // decay it genuinely can fail: extra noise turns confidently-wrong
        // decayed shots into coin flips, raising the average.)
        let calib = QubitCalibration { t1_ns: 1e9, prep_error: 0.0, ..calib };
        let cfg = SimConfig::default();
        let f1 = predict_mf_fidelity(&calib, &cfg, &[]);
        let noisier = QubitCalibration {
            noise_sigma: calib.noise_sigma * 2.0,
            ..calib
        };
        let f2 = predict_mf_fidelity(&noisier, &cfg, &[]);
        prop_assert!(f2 <= f1 + 1e-6, "{f1} -> {f2}");
    }

    #[test]
    fn shorter_t1_never_helps(calib in calibration()) {
        let cfg = SimConfig::default();
        let f1 = predict_mf_fidelity(&calib, &cfg, &[]);
        let decaying = QubitCalibration {
            t1_ns: calib.t1_ns / 4.0,
            ..calib
        };
        let f2 = predict_mf_fidelity(&decaying, &cfg, &[]);
        prop_assert!(f2 <= f1 + 1e-6, "{f1} -> {f2}");
    }

    #[test]
    fn interference_never_helps_without_decay(calib in calibration(), beta in 0.0f64..500.0) {
        // Same caveat as noise monotonicity: restrict to the decay-free
        // regime, where a symmetric statistic shift strictly blurs the
        // class boundary.
        let calib = QubitCalibration { t1_ns: 1e9, prep_error: 0.0, ..calib };
        let cfg = SimConfig::default();
        let clean = predict_mf_fidelity(&calib, &cfg, &[]);
        let disturbed = predict_mf_fidelity(&calib, &cfg, &[beta]);
        prop_assert!(disturbed <= clean + 1e-6);
    }

    #[test]
    fn trajectories_are_bounded_by_steady_state(calib in calibration()) {
        let cfg = SimConfig::default();
        for evo in [StateEvolution::Ground, StateEvolution::Excited, StateEvolution::DecayedAt(400.0)] {
            let (i, q) = mean_trajectory_vec(&calib, &cfg, evo);
            let bound_i = calib.ground_iq.0.abs().max(calib.excited_iq.0.abs()) * 1.05 + 1e-6;
            let bound_q = calib.ground_iq.1.abs().max(calib.excited_iq.1.abs()) * 1.05 + 1e-6;
            for k in 0..i.len() {
                prop_assert!((i[k] as f64).abs() <= bound_i, "{evo:?} i[{k}]={}", i[k]);
                prop_assert!((q[k] as f64).abs() <= bound_q, "{evo:?} q[{k}]={}", q[k]);
            }
        }
    }

    #[test]
    fn decayed_trajectory_interpolates_between_pure_states(
        calib in calibration(),
        t_d in 100.0f64..900.0
    ) {
        let cfg = SimConfig::default();
        let (gi, _) = mean_trajectory_vec(&calib, &cfg, StateEvolution::Ground);
        let (ei, _) = mean_trajectory_vec(&calib, &cfg, StateEvolution::Excited);
        let (di, _) = mean_trajectory_vec(&calib, &cfg, StateEvolution::DecayedAt(t_d));
        for k in 0..di.len() {
            let lo = gi[k].min(ei[k]) - 1e-3;
            let hi = gi[k].max(ei[k]) + 1e-3;
            prop_assert!(di[k] >= lo && di[k] <= hi, "sample {k}: {} outside [{lo}, {hi}]", di[k]);
        }
    }

    #[test]
    fn envelope_only_attenuates(calib in calibration(), tau in 100.0f64..2000.0) {
        let cfg = SimConfig::default();
        let (plain_i, _) = mean_trajectory_vec(&calib, &cfg, StateEvolution::Excited);
        let enveloped = QubitCalibration {
            signal_tau_ns: Some(tau),
            ..calib
        };
        let (env_i, _) = mean_trajectory_vec(&enveloped, &cfg, StateEvolution::Excited);
        for k in 0..plain_i.len() {
            prop_assert!(env_i[k].abs() <= plain_i[k].abs() + 1e-6);
        }
    }
}
