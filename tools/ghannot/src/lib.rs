//! GitHub Actions workflow-command ("annotation") formatting, shared by
//! the `tools/` crates.
//!
//! Both `benchdiff` (perf drift warnings) and `klinq-lint` (invariant
//! violations) surface findings in CI as GitHub annotations. The
//! `::warning ...::` / `::error ...::` command grammar is easy to get
//! subtly wrong — property values need `%`/`\r`/`\n`/`,`/`:` escaping or
//! a crafted message truncates (or forges) the annotation — so the
//! format strings live here once instead of being duplicated per tool.
//!
//! An [`Annotation`] is plain data with a [`Display`](fmt::Display)
//! impl; callers `println!("{}", ...)` it themselves, which keeps this
//! crate trivially testable (no I/O, no env sniffing).

#![forbid(unsafe_code)]

use std::fmt;

/// Annotation severity. GitHub renders `Error` annotations red and
/// `Warning` yellow; neither affects the job's exit status by itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// `::notice`
    Notice,
    /// `::warning`
    Warning,
    /// `::error`
    Error,
}

impl Level {
    fn command(self) -> &'static str {
        match self {
            Level::Notice => "notice",
            Level::Warning => "warning",
            Level::Error => "error",
        }
    }
}

/// One GitHub annotation: `::<level> title=...,file=...,line=...::<message>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Severity of the annotation.
    pub level: Level,
    /// Short title shown in bold in the annotation list.
    pub title: String,
    /// The message body.
    pub message: String,
    /// Repo-relative path the annotation attaches to, if any.
    pub file: Option<String>,
    /// 1-based line within `file`, if any.
    pub line: Option<u32>,
}

impl Annotation {
    /// A floating warning (no file/line attachment).
    pub fn warning(title: impl Into<String>, message: impl Into<String>) -> Self {
        Annotation {
            level: Level::Warning,
            title: title.into(),
            message: message.into(),
            file: None,
            line: None,
        }
    }

    /// A floating error (no file/line attachment).
    pub fn error(title: impl Into<String>, message: impl Into<String>) -> Self {
        Annotation {
            level: Level::Error,
            title: title.into(),
            message: message.into(),
            file: None,
            line: None,
        }
    }

    /// Attaches the annotation to `file:line`, so GitHub renders it
    /// inline in the PR diff.
    #[must_use]
    pub fn at(mut self, file: impl Into<String>, line: u32) -> Self {
        self.file = Some(file.into());
        self.line = Some(line);
        self
    }
}

/// Escapes a workflow-command *message* (the part after `::`): only
/// `%`, `\r` and `\n` are special there.
fn escape_data(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\r' => out.push_str("%0D"),
            '\n' => out.push_str("%0A"),
            c => out.push(c),
        }
    }
}

/// Escapes a workflow-command *property value* (`title=`, `file=`, ...):
/// the message escapes plus the property delimiters `,` and `:`.
fn escape_property(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\r' => out.push_str("%0D"),
            '\n' => out.push_str("%0A"),
            ',' => out.push_str("%2C"),
            ':' => out.push_str("%3A"),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut line = String::with_capacity(self.message.len() + self.title.len() + 32);
        line.push_str("::");
        line.push_str(self.level.command());
        line.push_str(" title=");
        escape_property(&self.title, &mut line);
        if let Some(file) = &self.file {
            line.push_str(",file=");
            escape_property(file, &mut line);
        }
        if let Some(n) = self.line {
            line.push_str(",line=");
            line.push_str(&n.to_string());
        }
        line.push_str("::");
        escape_data(&self.message, &mut line);
        f.write_str(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floating_warning_matches_the_benchdiff_shape() {
        let a = Annotation::warning("serving perf drifted (warn-only)", "wire_c256 drifted -3.1 pct");
        assert_eq!(
            a.to_string(),
            "::warning title=serving perf drifted (warn-only)::wire_c256 drifted -3.1 pct"
        );
    }

    #[test]
    fn file_attached_error_carries_file_and_line() {
        let a = Annotation::error("klinq-lint no-panic-serve", "`unwrap()` in serve path")
            .at("crates/klinq-serve/src/server.rs", 42);
        assert_eq!(
            a.to_string(),
            "::error title=klinq-lint no-panic-serve,file=crates/klinq-serve/src/server.rs,\
             line=42::`unwrap()` in serve path"
        );
    }

    #[test]
    fn message_newlines_and_percents_escape() {
        let a = Annotation::warning("t", "50% broke\nacross lines");
        assert_eq!(a.to_string(), "::warning title=t::50%25 broke%0Aacross lines");
    }

    #[test]
    fn property_commas_and_colons_escape() {
        let a = Annotation {
            level: Level::Notice,
            title: "a,b:c".into(),
            message: "m".into(),
            file: Some("weird,name.rs".into()),
            line: Some(7),
        };
        assert_eq!(a.to_string(), "::notice title=a%2Cb%3Ac,file=weird%2Cname.rs,line=7::m");
    }
}
