//! Perf-regression guard over the `BENCH_*.json` trajectory files the
//! vendored criterion work-alike writes.
//!
//! CI snapshots the committed `BENCH_inference.json` before the bench
//! run, lets the benches overwrite it, then diffs the two: any tracked
//! throughput id whose fresh figure falls more than the threshold below
//! its committed figure fails the build. Entries are only compared when
//! both runs recorded the same `worker_threads` — figures from
//! containers with different core counts are not comparable, and a
//! silent cross-container diff would produce false regressions (or,
//! worse, false passes).

#![forbid(unsafe_code)]

use std::fmt;

/// Default failure threshold: fail on >25% throughput regression.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Default id prefix guarded by CI: the direct batch-engine figures.
///
/// The `serving/*` ids deliberately stay OUTSIDE the guarded prefix:
/// serving throughput folds in thread scheduling, channel wake-ups and
/// TCP round trips, which jitter far more run-to-run on shared CI
/// runners than the compute-bound `batched_inference/*` figures — a
/// hard gate on them would flake without catching real engine
/// regressions, which the guarded direct figures already catch. They
/// are instead diffed under [`WARN_PREFIX`]: drifts surface as
/// warnings, never failures.
pub const DEFAULT_PREFIX: &str = "batched_inference/";

/// Id prefix diffed warn-only by the CLI: serving figures (throughput
/// *and* the `*_p50`/`*_p99` latency entries, which carry no `per_sec`
/// and compare on `ns_per_iter`, lower-is-better) are reported — as
/// GitHub warning annotations in Actions — without affecting the exit
/// code.
pub const WARN_PREFIX: &str = "serving/";

/// How a bench entry recorded the worker-pool size it ran with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolSize {
    /// The entry carries no `worker_threads` field (or an explicit
    /// `null`): recorded before the field existed.
    Unrecorded,
    /// A recorded pool size.
    Threads(u64),
    /// The field is present but not a non-negative integer (fractional,
    /// negative, or non-numeric) — never comparable to anything. The
    /// raw value rides along for the skip reason. The old
    /// `as_f64() as u64` parse silently truncated fractions and wrapped
    /// negatives into huge pool sizes, corrupting the comparability
    /// check either way.
    Invalid(String),
}

/// One bench entry relevant to the diff.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Full benchmark id (`group/name`).
    pub id: String,
    /// Throughput in units/s (`None` for latency-only entries).
    pub per_sec: Option<f64>,
    /// The recorded time figure in nanoseconds (a per-iteration time,
    /// or the percentile itself for latency entries). Entries without
    /// `per_sec` on either side compare on this, lower-is-better.
    pub ns_per_iter: Option<f64>,
    /// The unit of `per_sec` (`"elem/s"`, or `"index"` for
    /// higher-is-better dimensionless figures like the fairness index).
    /// Display-only for the verdicts, but a unit change between runs
    /// means the id changed meaning and must skip, not compare.
    pub unit: Option<String>,
    /// Worker-pool size the measurement ran with.
    pub worker_threads: PoolSize,
}

/// Outcome of diffing one id present in both files.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Fresh throughput is within the threshold of the baseline.
    Ok {
        /// Benchmark id.
        id: String,
        /// `fresh / baseline`.
        ratio: f64,
    },
    /// Fresh throughput regressed by more than the threshold.
    Regression {
        /// Benchmark id.
        id: String,
        /// Baseline units/s.
        baseline: f64,
        /// Fresh units/s.
        fresh: f64,
        /// `fresh / baseline`.
        ratio: f64,
        /// The entries' recorded unit, for display (`None` → `/s`).
        unit: Option<String>,
    },
    /// A latency entry (no throughput figure on either side) within
    /// the threshold of its baseline.
    LatencyOk {
        /// Benchmark id.
        id: String,
        /// `fresh_ns / baseline_ns` (lower is better).
        ratio: f64,
    },
    /// A latency entry slower than the baseline by more than the
    /// threshold.
    LatencyRegression {
        /// Benchmark id.
        id: String,
        /// Baseline nanoseconds.
        baseline_ns: f64,
        /// Fresh nanoseconds.
        fresh_ns: f64,
        /// `fresh_ns / baseline_ns` (lower is better).
        ratio: f64,
    },
    /// The entries are not comparable (pool-size mismatch or a missing
    /// throughput figure); reported but never fails the run.
    Skipped {
        /// Benchmark id.
        id: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Regression`] and
    /// [`Verdict::LatencyRegression`].
    pub fn is_regression(&self) -> bool {
        matches!(
            self,
            Self::Regression { .. } | Self::LatencyRegression { .. }
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ok { id, ratio } => write!(f, "ok         {id}: {:.1}% of baseline", ratio * 100.0),
            Self::Regression {
                id,
                baseline,
                fresh,
                ratio,
                unit,
            } => match unit.as_deref() {
                // Dimensionless higher-is-better figures (the fairness
                // index) print as themselves, not as a rate.
                Some("index") => write!(
                    f,
                    "REGRESSION {id}: index {fresh:.4} vs {baseline:.4} baseline ({:.1}%)",
                    ratio * 100.0
                ),
                _ => write!(
                    f,
                    "REGRESSION {id}: {fresh:.1}/s vs {baseline:.1}/s baseline ({:.1}%)",
                    ratio * 100.0
                ),
            },
            Self::LatencyOk { id, ratio } => {
                write!(f, "ok         {id}: {:.1}% of baseline latency", ratio * 100.0)
            }
            Self::LatencyRegression {
                id,
                baseline_ns,
                fresh_ns,
                ratio,
            } => write!(
                f,
                "REGRESSION {id}: {fresh_ns:.0} ns vs {baseline_ns:.0} ns baseline latency ({:.1}%)",
                ratio * 100.0
            ),
            Self::Skipped { id, reason } => write!(f, "skipped    {id}: {reason}"),
        }
    }
}

/// Parses the `results` array of a trajectory file.
///
/// # Errors
///
/// Returns a message when the JSON does not parse or has no `results`
/// array (a malformed baseline must fail loudly, not diff as empty).
pub fn parse_entries(json: &str) -> Result<Vec<BenchEntry>, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("malformed bench JSON: {e}"))?;
    let results = value
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| "bench JSON has no `results` array".to_string())?;
    Ok(results
        .iter()
        .filter_map(|entry| {
            Some(BenchEntry {
                id: entry.get("id")?.as_str()?.to_string(),
                per_sec: entry.get("per_sec").and_then(|v| v.as_f64()),
                ns_per_iter: entry.get("ns_per_iter").and_then(|v| v.as_f64()),
                unit: entry
                    .get("unit")
                    .and_then(|v| v.as_str())
                    .map(str::to_string),
                worker_threads: match entry.get("worker_threads") {
                    None | Some(serde_json::Value::Null) => PoolSize::Unrecorded,
                    Some(v) => match v.as_u64() {
                        Some(n) => PoolSize::Threads(n),
                        None => PoolSize::Invalid(format!("{v:?}")),
                    },
                },
            })
        })
        .collect())
}

/// Diffs every baseline entry matching `prefix` against the fresh run.
///
/// Ids missing from the fresh file are skipped (a filtered bench run
/// must not fail on what it did not measure); pool-size mismatches and
/// missing throughput figures are skipped with a reason; everything else
/// is `Ok` or `Regression` against `threshold`.
pub fn diff(
    baseline: &[BenchEntry],
    fresh: &[BenchEntry],
    prefix: &str,
    threshold: f64,
) -> Vec<Verdict> {
    baseline
        .iter()
        .filter(|b| b.id.starts_with(prefix))
        .map(|base| {
            let id = base.id.clone();
            let Some(new) = fresh.iter().find(|f| f.id == base.id) else {
                return Verdict::Skipped {
                    id,
                    reason: "not measured in the fresh run".into(),
                };
            };
            // An unparseable pool size can never certify comparability:
            // skip with the raw value rather than guessing.
            if let PoolSize::Invalid(raw) = &base.worker_threads {
                return Verdict::Skipped {
                    id,
                    reason: format!("baseline worker_threads is not a non-negative integer: {raw}"),
                };
            }
            if let PoolSize::Invalid(raw) = &new.worker_threads {
                return Verdict::Skipped {
                    id,
                    reason: format!("fresh worker_threads is not a non-negative integer: {raw}"),
                };
            }
            if base.worker_threads != new.worker_threads {
                return Verdict::Skipped {
                    id,
                    reason: format!(
                        "worker_threads mismatch (baseline {:?}, fresh {:?})",
                        base.worker_threads, new.worker_threads
                    ),
                };
            }
            // A unit change means the id's figure changed meaning
            // between the runs (e.g. a throughput id repurposed as a
            // fairness index): nothing comparable.
            if base.unit != new.unit {
                return Verdict::Skipped {
                    id,
                    reason: format!(
                        "unit changed between runs (baseline {:?}, fresh {:?})",
                        base.unit, new.unit
                    ),
                };
            }
            match (base.per_sec, new.per_sec) {
                // `per_sec` carries every higher-is-better figure: a
                // rate in units/s, or a dimensionless index (unit
                // `"index"`, e.g. the Jain fairness index) — the ratio
                // test is the same for both.
                (Some(base_rate), Some(new_rate)) => {
                    if base_rate <= 0.0 {
                        return Verdict::Skipped {
                            id,
                            reason: "non-positive baseline throughput".into(),
                        };
                    }
                    let ratio = new_rate / base_rate;
                    if ratio < 1.0 - threshold {
                        Verdict::Regression {
                            id,
                            baseline: base_rate,
                            fresh: new_rate,
                            ratio,
                            unit: base.unit.clone(),
                        }
                    } else {
                        Verdict::Ok { id, ratio }
                    }
                }
                // Latency entries (e.g. `serving/wire_c256_p99`) carry
                // no throughput on either side: compare the recorded
                // nanoseconds instead, lower-is-better.
                (None, None) => match (base.ns_per_iter, new.ns_per_iter) {
                    (Some(base_ns), Some(new_ns)) if base_ns > 0.0 => {
                        let ratio = new_ns / base_ns;
                        if ratio > 1.0 + threshold {
                            Verdict::LatencyRegression {
                                id,
                                baseline_ns: base_ns,
                                fresh_ns: new_ns,
                                ratio,
                            }
                        } else {
                            Verdict::LatencyOk { id, ratio }
                        }
                    }
                    _ => Verdict::Skipped {
                        id,
                        reason: "no throughput or positive latency figure to compare".into(),
                    },
                },
                // Throughput on only one side: the entry changed kind
                // between the runs — nothing comparable.
                _ => Verdict::Skipped {
                    id,
                    reason: "throughput recorded on only one side".into(),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, per_sec: Option<f64>, workers: Option<u64>) -> BenchEntry {
        BenchEntry {
            id: id.to_string(),
            per_sec,
            ns_per_iter: None,
            unit: None,
            worker_threads: match workers {
                Some(n) => PoolSize::Threads(n),
                None => PoolSize::Unrecorded,
            },
        }
    }

    fn index_entry(id: &str, value: f64, workers: Option<u64>) -> BenchEntry {
        BenchEntry {
            unit: Some("index".to_string()),
            ..entry(id, Some(value), workers)
        }
    }

    fn latency_entry(id: &str, ns: f64, workers: Option<u64>) -> BenchEntry {
        BenchEntry {
            ns_per_iter: Some(ns),
            ..entry(id, None, workers)
        }
    }

    #[test]
    fn parses_report_shape() {
        let json = r#"{
  "schema": 1,
  "bench": "inference",
  "results": [
    {"id": "batched_inference/testset_parallel", "ns_per_iter": 1316192.7, "per_sec": 291750.6, "unit": "elem/s", "worker_threads": 1},
    {"id": "inference/student_fnn_a_float", "ns_per_iter": 719.6, "per_sec": null}
  ]
}"#;
        let entries = parse_entries(json).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].per_sec, Some(291750.6));
        assert_eq!(entries[0].worker_threads, PoolSize::Threads(1));
        assert_eq!(entries[1].per_sec, None);
        assert_eq!(entries[1].worker_threads, PoolSize::Unrecorded);
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries("{}").is_err());
    }

    #[test]
    fn non_integer_worker_threads_parse_invalid_and_skip_with_a_reason() {
        // Regression: `as_f64() as u64` silently truncated 1.5 to 1 and
        // wrapped -3 into a huge pool size, so corrupted fields could
        // satisfy (or vacuously fail) the comparability check. They must
        // parse as `Invalid` and never compare.
        let json = r#"{"results": [
    {"id": "batched_inference/frac", "per_sec": 100.0, "worker_threads": 1.5},
    {"id": "batched_inference/neg", "per_sec": 100.0, "worker_threads": -3},
    {"id": "batched_inference/str", "per_sec": 100.0, "worker_threads": "four"}
  ]}"#;
        let bad = parse_entries(json).unwrap();
        for e in &bad {
            assert!(
                matches!(e.worker_threads, PoolSize::Invalid(_)),
                "{:?} must parse as Invalid",
                e.worker_threads
            );
        }
        // A fractional baseline must not be mistaken for the truncated
        // integer it would previously have become.
        assert_ne!(bad[0].worker_threads, PoolSize::Threads(1));
        let fresh = [
            entry("batched_inference/frac", Some(100.0), Some(1)),
            entry("batched_inference/neg", Some(100.0), Some(1)),
            entry("batched_inference/str", Some(100.0), Some(1)),
        ];
        for v in diff(&bad, &fresh, DEFAULT_PREFIX, 0.25) {
            assert!(!v.is_regression());
            assert!(
                v.to_string().contains("not a non-negative integer"),
                "unexpected verdict: {v}"
            );
        }
        // And symmetrically when the *fresh* side is corrupt.
        let verdicts = diff(&fresh, &bad, DEFAULT_PREFIX, 0.25);
        assert!(verdicts.iter().all(|v| !v.is_regression()));
        assert!(verdicts[0].to_string().contains("fresh worker_threads"));
    }

    #[test]
    fn regression_beyond_threshold_is_flagged() {
        let base = [entry("batched_inference/a", Some(100_000.0), Some(1))];
        let ok = [entry("batched_inference/a", Some(80_000.0), Some(1))];
        let bad = [entry("batched_inference/a", Some(70_000.0), Some(1))];
        assert!(!diff(&base, &ok, DEFAULT_PREFIX, 0.25)[0].is_regression());
        let verdicts = diff(&base, &bad, DEFAULT_PREFIX, 0.25);
        assert!(verdicts[0].is_regression());
        assert!(verdicts[0].to_string().contains("REGRESSION"));
    }

    #[test]
    fn improvements_and_untracked_ids_pass() {
        let base = [
            entry("batched_inference/a", Some(100_000.0), Some(1)),
            entry("serving/one", Some(100_000.0), Some(1)),
        ];
        let fresh = [
            entry("batched_inference/a", Some(250_000.0), Some(1)),
            // Serving collapsed — but it is outside the guarded prefix.
            entry("serving/one", Some(1_000.0), Some(1)),
        ];
        let verdicts = diff(&base, &fresh, DEFAULT_PREFIX, 0.25);
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].is_regression());
    }

    #[test]
    fn latency_entries_compare_on_nanoseconds_lower_is_better() {
        let base = [latency_entry("serving/wire_c256_p99", 1_000_000.0, Some(1))];
        // 20% slower: within a 25% threshold.
        let ok = [latency_entry("serving/wire_c256_p99", 1_200_000.0, Some(1))];
        let verdicts = diff(&base, &ok, "serving/", 0.25);
        assert!(matches!(verdicts[0], Verdict::LatencyOk { .. }), "{}", verdicts[0]);
        // Much FASTER is fine — only slower-than-threshold regresses.
        let faster = [latency_entry("serving/wire_c256_p99", 100_000.0, Some(1))];
        assert!(!diff(&base, &faster, "serving/", 0.25)[0].is_regression());
        let slow = [latency_entry("serving/wire_c256_p99", 1_300_000.0, Some(1))];
        let verdicts = diff(&base, &slow, "serving/", 0.25);
        assert!(verdicts[0].is_regression());
        assert!(verdicts[0].to_string().contains("baseline latency"), "{}", verdicts[0]);
    }

    #[test]
    fn fairness_index_entries_compare_higher_is_better() {
        let base = [index_entry("serving/soak_fairness_jain", 0.99, Some(1))];
        // A small dip stays within the threshold.
        let ok = [index_entry("serving/soak_fairness_jain", 0.95, Some(1))];
        assert!(!diff(&base, &ok, "serving/", 0.25)[0].is_regression());
        // Improvement (toward 1.0) is never a regression.
        let better = [index_entry("serving/soak_fairness_jain", 1.0, Some(1))];
        assert!(!diff(&base, &better, "serving/", 0.25)[0].is_regression());
        // A collapse to one-tenant-takes-all trips the guard, and the
        // verdict reads as an index, not a rate.
        let collapsed = [index_entry("serving/soak_fairness_jain", 0.34, Some(1))];
        let verdicts = diff(&base, &collapsed, "serving/", 0.25);
        assert!(verdicts[0].is_regression());
        let shown = verdicts[0].to_string();
        assert!(shown.contains("index 0.34"), "unexpected display: {shown}");
        assert!(
            !shown.contains("/s baseline"),
            "index must not display as a rate: {shown}"
        );
    }

    #[test]
    fn unit_changes_between_runs_skip_instead_of_comparing() {
        let base = [entry("serving/soak_fairness_jain", Some(100_000.0), Some(1))];
        let fresh = [index_entry("serving/soak_fairness_jain", 0.99, Some(1))];
        let verdicts = diff(&base, &fresh, "serving/", 0.25);
        assert!(!verdicts[0].is_regression());
        assert!(
            verdicts[0].to_string().contains("unit changed"),
            "unexpected verdict: {}",
            verdicts[0]
        );
    }

    #[test]
    fn entries_that_change_kind_between_runs_are_skipped() {
        // A throughput id whose fresh run recorded latency-only (or vice
        // versa) must skip, not silently compare across meanings.
        let base = [entry("serving/wire_c64", Some(100_000.0), Some(1))];
        let fresh = [latency_entry("serving/wire_c64", 1_000.0, Some(1))];
        let verdicts = diff(&base, &fresh, "serving/", 0.25);
        assert!(!verdicts[0].is_regression());
        assert!(verdicts[0].to_string().contains("only one side"), "{}", verdicts[0]);
    }

    #[test]
    fn incomparable_entries_are_skipped_not_failed() {
        let base = [
            entry("batched_inference/a", Some(100_000.0), Some(4)),
            entry("batched_inference/b", Some(100_000.0), Some(1)),
            entry("batched_inference/c", None, Some(1)),
        ];
        let fresh = [
            // Different container core count.
            entry("batched_inference/a", Some(10_000.0), Some(1)),
            // `b` not re-measured (filtered run); `c` has no throughput.
            entry("batched_inference/c", None, Some(1)),
        ];
        let verdicts = diff(&base, &fresh, DEFAULT_PREFIX, 0.25);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| !v.is_regression()));
        assert!(verdicts[0].to_string().contains("worker_threads mismatch"));
        assert!(verdicts[1].to_string().contains("not measured"));
        assert!(verdicts[2].to_string().contains("no throughput"));
    }
}
