//! CLI: `benchdiff <baseline.json> <fresh.json> [--prefix P] [--threshold T]`.
//!
//! Exits non-zero when any guarded id regressed by more than the
//! threshold (default: >25% below baseline on `batched_inference/*`).
//! `serving/*` entries — throughput and latency percentiles alike — are
//! additionally diffed warn-only: drifts print (as GitHub warning
//! annotations under Actions) without affecting the exit code.

use benchdiff::{diff, parse_entries, Verdict, DEFAULT_PREFIX, DEFAULT_THRESHOLD, WARN_PREFIX};
use ghannot::Annotation;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut prefix = DEFAULT_PREFIX.to_string();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--prefix" => match iter.next() {
                Some(p) => prefix = p.clone(),
                None => return usage("--prefix needs a value"),
            },
            "--threshold" => match iter.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => threshold = t,
                _ => return usage("--threshold needs a value in [0, 1)"),
            },
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return usage("expected exactly two report paths");
    };

    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_entries(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Warn-only pass first (unless the guarded prefix already covers
    // these ids — then the hard verdicts below are what counts): serving
    // figures jitter on shared runners, so drift warns instead of fails.
    if !WARN_PREFIX.starts_with(&prefix) {
        for v in diff(&baseline, &fresh, WARN_PREFIX, threshold) {
            if v.is_regression() {
                println!("{}", Annotation::warning("serving perf drifted (warn-only)", v.to_string()));
            } else {
                println!("benchdiff: (warn-only) {v}");
            }
        }
    }

    let verdicts = diff(&baseline, &fresh, &prefix, threshold);
    if verdicts.is_empty() {
        println!("benchdiff: no `{prefix}*` entries in the baseline — nothing to guard");
        return ExitCode::SUCCESS;
    }
    for v in &verdicts {
        println!("benchdiff: {v}");
    }
    if verdicts.iter().any(Verdict::is_regression) {
        eprintln!("benchdiff: throughput regressed by more than {:.0}%", threshold * 100.0);
        return ExitCode::FAILURE;
    }
    if !verdicts.iter().any(|v| matches!(v, benchdiff::Verdict::Ok { .. })) {
        // Every guarded id was skipped: the guard compared nothing, which
        // usually means the committed baseline was recorded at a different
        // pool size than this runner (e.g. a 1-core container baseline on
        // a multi-core CI runner). Surface it loudly — as a GitHub
        // annotation when running in Actions — so a silently vacuous
        // guard doesn't pass for a working one; committing a baseline
        // recorded on this runner's pool size makes the guard real.
        println!(
            "{}",
            Annotation::warning(
                "benchdiff compared nothing",
                format!(
                    "all {} guarded `{prefix}*` entries were skipped (pool-size mismatch or \
                     missing figures) — the perf guard is vacuous until a baseline recorded \
                     at this runner's worker_threads is committed",
                    verdicts.len()
                ),
            )
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("benchdiff: {err}");
    eprintln!("usage: benchdiff <baseline.json> <fresh.json> [--prefix P] [--threshold T]");
    ExitCode::FAILURE
}
