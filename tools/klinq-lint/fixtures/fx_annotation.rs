// lint-fixture: path=crates/klinq-serve/src/fx_annotation.rs
// lint-expect: annotation@11
// lint-expect: no-panic-serve@12
// lint-expect: annotation@15
// lint-expect: no-panic-serve@16
// lint-expect: annotation@20
// lint-expect: no-panic-serve@21
//! Malformed `klinq-lint:` annotations are themselves findings, and do
//! not suppress the violation they sit on.

// klinq-lint: allow(no-panic-serve)
fn empty_reason(v: Option<u32>) -> u32 { v.unwrap() }

fn unknown_rule(v: Option<u32>) -> u32 {
    // klinq-lint: allow(no-such-rule) a reason that excuses nothing
    v.unwrap()
}

fn bad_grammar(v: Option<u32>) -> u32 {
    // klinq-lint: deny(no-panic-serve) wrong verb
    v.unwrap()
}
