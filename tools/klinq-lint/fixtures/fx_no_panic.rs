// lint-fixture: path=crates/klinq-serve/src/fx_no_panic.rs
//! Firing and suppressed cases for `no-panic-serve`.

fn firing(v: Option<u32>, r: Result<u32, ()>, xs: &[u32]) -> u32 {
    let a = v.unwrap(); //~ no-panic-serve
    let b = r.expect("present"); //~ no-panic-serve
    if a == 0 {
        panic!("boom"); //~ no-panic-serve
    }
    assert!(xs[0] > 0, "first element"); //~ no-panic-serve
    match b {
        0 => todo!(), //~ no-panic-serve
        1 => unreachable!("one is filtered upstream"), //~ no-panic-serve
        _ => a + b,
    }
}

fn suppressed_by_annotation(v: Option<u32>) -> u32 {
    // klinq-lint: allow(no-panic-serve) fixture: deliberate liveness invariant
    v.unwrap()
}

fn plain_assert_without_indexing_is_fine(n: u32) {
    assert!(n > 0, "n must be positive");
}

fn panic_in_a_string_or_comment_is_fine() -> &'static str {
    // this comment says unwrap() and panic!() and nothing fires
    "unwrap() and panic!() in a string literal"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
