// lint-fixture: path=crates/klinq-core/src/fx_no_panic_out_of_scope.rs
//! The same panicky code outside `crates/klinq-serve/src/` is out of
//! scope for `no-panic-serve` — training code may assert its invariants.

fn unscoped(v: Option<u32>) -> u32 {
    v.unwrap()
}
