// lint-fixture: path=vendor/epoll/src/fx_unsafe_allowlisted.rs
//! Inside the allowlist, `unsafe` needs a `// SAFETY:` comment block
//! directly above it; with one it is suppressed.

fn missing_safety(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe-confinement
}

fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

fn documented_multiline(p: *const u8) -> u8 {
    // The justification may span a contiguous comment block, as long
    // as the block ends directly above the unsafe.
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}
