// lint-fixture: path=crates/klinq-dsp/src/lib.rs
// lint-expect: unsafe-confinement@1
//! A first-party crate root without `#![forbid(unsafe_code)]` fires at
//! line 1.

pub fn no_hygiene_attribute_here() {}
