// lint-fixture: path=crates/klinq-fixed/src/lib.rs
// lint-expect: unsafe-confinement@1
//! The crates that legitimately hold `unsafe` must carry
//! `#![deny(unsafe_op_in_unsafe_fn)]`; `forbid(unsafe_code)` does not
//! satisfy that policy (it would not even compile there).

#![forbid(unsafe_code)]

pub fn wrong_attribute_for_an_unsafe_root() {}
