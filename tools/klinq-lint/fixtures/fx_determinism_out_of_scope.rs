// lint-fixture: path=crates/klinq-serve/src/health.rs
//! Wall-clock reads outside the deterministic modules are fine — the
//! server legitimately timestamps health reports.

fn scrape() {
    let _now = Instant::now();
}
