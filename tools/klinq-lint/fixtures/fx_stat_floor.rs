// lint-fixture: path=crates/klinq-core/src/fx_stat_floor.rs
//! Firing and suppressed cases for `stat-floor-locality`.

mod stat_floors {
    /// Inside the `stat_floors` module is the sanctioned home.
    pub const SMOKE_FIDELITY: f64 = 0.9;
}

fn firing(fidelity: f64) {
    assert!(fidelity > 0.85, "held-out fidelity {fidelity}"); //~ stat-floor-locality
}

fn firing_const() {
    const LOCAL_ACCURACY_FLOOR: f64 = 0.72; //~ stat-floor-locality
    let _ = LOCAL_ACCURACY_FLOOR;
}

fn tolerance_band_is_not_a_floor(fidelity: f64, target: f64) {
    assert!((fidelity - target).abs() < 0.25, "band, not a floor");
}

fn tiny_epsilon_is_not_a_floor(fidelity: f64, predicted: f64) {
    assert!(fidelity - predicted < 1e-6);
}

fn unrelated_float_is_fine(weight: f64) {
    assert!(weight > 0.85, "no fidelity/accuracy ident near this one");
}

fn suppressed_by_annotation(fidelity: f64) {
    // klinq-lint: allow(stat-floor-locality) fixture: upstream crate cannot import stat_floors
    assert!(fidelity > 0.85);
}
