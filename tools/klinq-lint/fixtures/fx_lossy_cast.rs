// lint-fixture: path=src/fx_lossy_cast.rs
//! Firing and suppressed cases for `lossy-cast` (the benchdiff
//! PoolSize bug class: a JSON number parsed as f64 then truncated).

fn firing(v: &Value) -> u64 {
    v.as_f64().unwrap_or(0.0) as u64 //~ lossy-cast
}

fn firing_through_question_mark(v: &Value) -> Option<u32> {
    Some(v.as_f64()? as u32) //~ lossy-cast
}

fn firing_f32(sample: &Sample) -> i16 {
    sample.as_f32().clamp(-1.0, 1.0) as i16 //~ lossy-cast
}

fn float_result_is_fine(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

fn integer_parse_is_the_fix(v: &Value) -> u64 {
    v.as_u64().unwrap_or(0)
}

fn suppressed_by_annotation(v: &Value) -> u64 {
    // klinq-lint: allow(lossy-cast) fixture: value is validated to be a small integer upstream
    v.as_f64().unwrap_or(0.0) as u64
}
