// lint-fixture: path=crates/klinq-nn/src/fx_unsafe_outside.rs
//! `unsafe` outside the allowlist fires even when documented.

fn outside_allowlist(p: *const u8) -> u8 {
    // SAFETY: a SAFETY comment does not rescue non-allowlisted unsafe.
    unsafe { *p } //~ unsafe-confinement
}
