// lint-fixture: path=crates/klinq-bench/src/lib.rs
//! A first-party crate root carrying the attribute is clean.

#![forbid(unsafe_code)]

pub fn hygienic() {}
