// lint-fixture: path=crates/klinq-fixed/src/fx_determinism.rs
//! Firing and suppressed cases for `determinism`.

fn firing() {
    let _started = Instant::now(); //~ determinism
    let _wall = SystemTime::now(); //~ determinism
    let _rng = thread_rng(); //~ determinism
    let _seeded = SmallRng::from_entropy(); //~ determinism
    let _coin: bool = rand::random(); //~ determinism
}

fn explicit_seed_is_fine(seed: u64) {
    let _rng = SmallRng::seed_from_u64(seed);
}

fn a_field_named_random_is_fine(cfg: &Config) {
    let _ = cfg.random;
}

fn suppressed_by_annotation() {
    // klinq-lint: allow(determinism) fixture: coarse health timestamp, not on the decode path
    let _ = Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_fine() {
        let _ = Instant::now();
    }
}
