//! klinq-lint — the workspace invariant linter.
//!
//! Four PRs in a row ended with a hand audit: the PR 7 unwrap/expect
//! sweep of the serve path, PR 4's "floors live only in `stat_floors`"
//! policy, PR 5's `as_f64() as u64` truncation bug, the SAFETY-comment
//! discipline around the `vendor/epoll` bindings. None of that was
//! machine-checked, so every new PR could silently regress it. This
//! crate turns those audits into rules over a comment/string-aware
//! lexer ([`lexer`]) and runs as a CI gate (`lint-invariants` in
//! `.github/workflows/ci.yml`) plus a self-test in this crate's own
//! suite, so `cargo test` alone re-verifies the tree.
//!
//! # Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-serve` | no `unwrap`/`expect`/panic-family macros/indexing `assert!` in `crates/klinq-serve/src` outside `#[cfg(test)]` |
//! | `unsafe-confinement` | `unsafe` only in `vendor/epoll` + `klinq_fixed::q16`, each block under a `// SAFETY:` comment; every other first-party crate root carries `#![forbid(unsafe_code)]` |
//! | `stat-floor-locality` | fidelity/accuracy threshold literals live in `klinq_core::stat_floors`, nowhere else |
//! | `determinism` | no `Instant::now`/`SystemTime::now`/`thread_rng`-style ambient nondeterminism in the wire codec, fixed-point, DSP kernels, or persist |
//! | `lossy-cast` | no `as_f64(...) as u64`-shaped narrowing of parsed values (the benchdiff PoolSize bug class) |
//!
//! A deliberate exception is annotated in the source it excuses:
//!
//! ```text
//! // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic; see module docs
//! let guard = self.tx.read().unwrap();
//! ```
//!
//! The annotation covers its own line and the first code line after its
//! contiguous comment block. The reason text is mandatory — an empty
//! reason (or an unknown rule name) is itself a violation, reported
//! under the `annotation` meta-rule, so suppressions stay documented.

#![forbid(unsafe_code)]

pub mod lexer;

use lexer::{lex, Comment, Lexed, TokKind, Token};
use serde_json::Value;
use std::path::{Path, PathBuf};

/// The annotatable rule names, in reporting order.
pub const RULES: [&str; 5] = [
    "no-panic-serve",
    "unsafe-confinement",
    "stat-floor-locality",
    "determinism",
    "lossy-cast",
];

/// Meta-rule for malformed/empty-reason `klinq-lint:` annotations.
pub const ANNOTATION_RULE: &str = "annotation";

/// Files where `unsafe` is allowed (with a `// SAFETY:` comment): the
/// epoll syscall bindings and the fixed-point float→int conversion.
const UNSAFE_ALLOWLIST: [&str; 2] = ["vendor/epoll/", "crates/klinq-fixed/src/q16.rs"];

/// Crate roots that hold the workspace's `unsafe` and therefore carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` instead of `#![forbid(unsafe_code)]`.
const UNSAFE_CRATE_ROOTS: [&str; 2] = ["vendor/epoll/src/lib.rs", "crates/klinq-fixed/src/lib.rs"];

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired (one of [`RULES`] or [`ANNOTATION_RULE`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// An in-source suppression: `// klinq-lint: allow(<rule>) <reason>`.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// First line the allow covers (the comment's own first line).
    from: u32,
    /// Last line the allow covers: one past its contiguous comment
    /// block, i.e. the first code line below the annotation.
    to: u32,
}

/// Inclusive line ranges (attribute line through closing brace).
type Spans = Vec<(u32, u32)>;

fn in_spans(spans: &Spans, line: u32) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct && tok.text.len() == 1 && tok.text.as_bytes()[0] == c as u8
}

fn is_ident(tok: &Token, name: &str) -> bool {
    tok.kind == TokKind::Ident && tok.text == name
}

/// Index of the matching `close` for the `open` delimiter at
/// `open_idx`, counting nesting. `None` when unbalanced (malformed
/// input — rules bail instead of guessing).
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open_idx) {
        if is_punct(tok, open) {
            depth += 1;
        } else if is_punct(tok, close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Line spans of `#[test]` / `#[cfg(test)]`-gated items (functions and
/// modules). A file-level `#![cfg(test)]` marks the whole file.
fn test_spans(tokens: &[Token]) -> Spans {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(&tokens[i], '#') {
            i += 1;
            continue;
        }
        let inner = i + 1 < tokens.len() && is_punct(&tokens[i + 1], '!');
        let open = i + if inner { 2 } else { 1 };
        if open >= tokens.len() || !is_punct(&tokens[open], '[') {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, '[', ']') else {
            break;
        };
        let attr = &tokens[open + 1..close];
        let first = attr.first();
        let is_test_attr = match first {
            Some(t) if is_ident(t, "test") && attr.len() == 1 => true,
            Some(t) if is_ident(t, "cfg") => attr.iter().any(|t| is_ident(t, "test")),
            _ => false,
        };
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the enclosing scope (for our purposes,
            // the whole file) is test-only.
            spans.push((1, u32::MAX));
            return spans;
        }
        let attr_line = tokens[i].line;
        // Skip any further attributes, then find the item's body brace
        // (or a `;` for braceless items).
        let mut j = close + 1;
        while j + 1 < tokens.len() && is_punct(&tokens[j], '#') && is_punct(&tokens[j + 1], '[') {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => return spans,
            }
        }
        while j < tokens.len() && !is_punct(&tokens[j], '{') && !is_punct(&tokens[j], ';') {
            j += 1;
        }
        if j < tokens.len() && is_punct(&tokens[j], '{') {
            if let Some(end) = matching(tokens, j, '{', '}') {
                spans.push((attr_line, tokens[end].line));
                i = end + 1;
                continue;
            }
        }
        let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
        spans.push((attr_line, end_line));
        i = j + 1;
    }
    spans
}

/// Line spans of `mod <name> { ... }` blocks.
fn mod_spans(tokens: &[Token], name: &str) -> Spans {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if is_ident(&tokens[i], "mod")
            && tokens.get(i + 1).is_some_and(|t| is_ident(t, name))
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, '{'))
        {
            if let Some(end) = matching(tokens, i + 2, '{', '}') {
                spans.push((tokens[i].line, tokens[end].line));
            }
        }
    }
    spans
}

/// Groups contiguous comments and returns, for each comment index, the
/// last line of its contiguous block (a run of comments on consecutive
/// lines acts as one annotation/SAFETY unit).
fn comment_block_ends(comments: &[Comment]) -> Vec<u32> {
    let mut ends = vec![0u32; comments.len()];
    let mut i = 0;
    while i < comments.len() {
        let mut j = i;
        while j + 1 < comments.len() && comments[j + 1].line <= comments[j].end_line + 1 {
            j += 1;
        }
        let block_end = comments[j].end_line;
        for e in ends.iter_mut().take(j + 1).skip(i) {
            *e = block_end;
        }
        i = j + 1;
    }
    ends
}

/// Parses `klinq-lint:` annotations out of the comments. Malformed ones
/// (bad grammar, unknown rule, missing reason) become findings.
fn parse_allows(comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let ends = comment_block_ends(comments);
    let mut allows = Vec::new();
    for (idx, c) in comments.iter().enumerate() {
        let Some(rest) = c.text.trim().strip_prefix("klinq-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let bad = |findings: &mut Vec<Finding>, msg: String| {
            findings.push(Finding {
                file: String::new(),
                line: c.line,
                rule: ANNOTATION_RULE,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(
                findings,
                format!("malformed annotation `klinq-lint: {rest}` — expected `allow(<rule>) <reason>`"),
            );
            continue;
        };
        let Some(close) = args.find(')') else {
            bad(findings, "unterminated `allow(` in klinq-lint annotation".to_string());
            continue;
        };
        let rule = args[..close].trim();
        let reason = args[close + 1..].trim();
        if !RULES.contains(&rule) {
            bad(
                findings,
                format!("unknown rule `{rule}` in klinq-lint annotation (rules: {})", RULES.join(", ")),
            );
            continue;
        }
        if reason.is_empty() {
            bad(
                findings,
                format!("`allow({rule})` without a reason — the reason text is mandatory"),
            );
            continue;
        }
        allows.push(Allow {
            rule: rule.to_string(),
            from: c.line,
            to: ends[idx].saturating_add(1),
        });
    }
    allows
}

/// True when a contiguous comment block containing `SAFETY:` ends on
/// the line directly above `line` (or sits on `line` itself).
fn has_safety_comment(comments: &[Comment], ends: &[u32], line: u32) -> bool {
    comments.iter().enumerate().any(|(i, c)| {
        let block_end = ends[i];
        (block_end + 1 == line || c.line == line) && c.text.contains("SAFETY:")
    })
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

struct FileInfo<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    tests: Spans,
    comment_ends: Vec<u32>,
}

impl FileInfo<'_> {
    fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        out.push(Finding {
            file: self.path.to_string(),
            line,
            rule,
            message,
        });
    }
}

/// Rule `no-panic-serve`: the client-visible serving crate must answer
/// with typed errors, not panics. Applies to `crates/klinq-serve/src`
/// outside `#[cfg(test)]` items.
fn rule_no_panic_serve(ctx: &FileInfo<'_>, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/klinq-serve/src/") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_spans(&ctx.tests, t.line) {
            continue;
        }
        let prev_dot = i > 0 && is_punct(&toks[i - 1], '.');
        let next_paren = toks.get(i + 1).is_some_and(|n| is_punct(n, '('));
        let next_bang = toks.get(i + 1).is_some_and(|n| is_punct(n, '!'));
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => {
                let line = t.line;
                let what = t.text.clone();
                ctx.emit(
                    out,
                    "no-panic-serve",
                    line,
                    format!(
                    "`.{what}()` on the serve path — return a typed ServeError, or annotate \
                    a deliberate liveness invariant with `klinq-lint: allow(no-panic-serve) <reason>`"
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                let line = t.line;
                let what = t.text.clone();
                ctx.emit(
                    out,
                    "no-panic-serve",
                    line,
                    format!("`{what}!` on the serve path — a panic here drops client requests"),
                );
            }
            "assert" | "assert_eq" | "assert_ne" if next_bang => {
                let Some(open) = toks.get(i + 2).filter(|t| is_punct(t, '(')) else {
                    continue;
                };
                let _ = open;
                let Some(close) = matching(toks, i + 2, '(', ')') else {
                    continue;
                };
                if toks[i + 3..close].iter().any(|t| is_punct(t, '[')) {
                    let line = t.line;
                    let what = t.text.clone();
                    ctx.emit(
                        out,
                        "no-panic-serve",
                        line,
                        format!(
                        "indexing-adjacent `{what}!` on the serve path — a failed assert \
                        panics the collector; use a typed error path"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Rule `unsafe-confinement`: `unsafe` lives only in the allowlist,
/// always under a `// SAFETY:` comment; crate roots carry the matching
/// hygiene attribute.
fn rule_unsafe_confinement(ctx: &FileInfo<'_>, out: &mut Vec<Finding>) {
    let allowlisted = UNSAFE_ALLOWLIST
        .iter()
        .any(|p| ctx.path.starts_with(p) || ctx.path == p.trim_end_matches('/'));
    let toks = &ctx.lexed.tokens;
    for tok in toks {
        if !is_ident(tok, "unsafe") {
            continue;
        }
        let line = tok.line;
        if !allowlisted {
            ctx.emit(
                out,
                "unsafe-confinement",
                line,
                "`unsafe` outside the allowlist (vendor/epoll, klinq_fixed::q16) — \
                extend the allowlist deliberately or find a safe formulation"
                .to_string(),
            );
        } else if !has_safety_comment(&ctx.lexed.comments, &ctx.comment_ends, line) {
            ctx.emit(
                out,
                "unsafe-confinement",
                line,
                "`unsafe` without a `// SAFETY:` comment immediately above it".to_string(),
            );
        }
    }
    // Crate-root hygiene attribute.
    let policy = if UNSAFE_CRATE_ROOTS.contains(&ctx.path) {
        Some(("deny", "unsafe_op_in_unsafe_fn"))
    } else if is_first_party_crate_root(ctx.path) {
        Some(("forbid", "unsafe_code"))
    } else {
        None
    };
    if let Some((level, lint)) = policy {
        if !has_inner_attr(toks, level, lint) {
            ctx.emit(
                out,
                "unsafe-confinement",
                1,
                format!("crate root is missing `#![{level}({lint})]`"),
            );
        }
    }
}

/// Whether `path` is a first-party crate root that must forbid unsafe.
fn is_first_party_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" {
        return true;
    }
    for prefix in ["crates/", "tools/"] {
        if let Some(rest) = path.strip_prefix(prefix) {
            if let Some((_, tail)) = rest.split_once('/') {
                if tail == "src/lib.rs" {
                    return true;
                }
            }
        }
    }
    false
}

/// Looks for the inner attribute `#![level(lint)]`.
fn has_inner_attr(tokens: &[Token], level: &str, lint: &str) -> bool {
    tokens.windows(6).any(|w| {
        is_punct(&w[0], '#')
            && is_punct(&w[1], '!')
            && is_punct(&w[2], '[')
            && is_ident(&w[3], level)
            && is_punct(&w[4], '(')
            && is_ident(&w[5], lint)
    })
}

/// Rule `stat-floor-locality`: fidelity/accuracy thresholds belong in
/// `klinq_core::stat_floors` (raise-shots-never-loosen-floors policy).
/// Fires on a float literal in (0, 1) that shares a line with a
/// fidelity/accuracy identifier and either a comparison operator or a
/// `const` declaration, outside the `stat_floors` module itself.
fn rule_stat_floor_locality(ctx: &FileInfo<'_>, out: &mut Vec<Finding>) {
    let floors = mod_spans(&ctx.lexed.tokens, "stat_floors");
    let toks = &ctx.lexed.tokens;
    let mut hits: Vec<(u32, String)> = Vec::new();
    for t in toks {
        if t.kind != TokKind::Float || in_spans(&floors, t.line) {
            continue;
        }
        let Ok(v) = t
            .text
            .trim_end_matches("f32")
            .trim_end_matches("f64")
            .trim_end_matches('_')
            .replace('_', "")
            .parse::<f64>()
        else {
            continue;
        };
        // Floors in this workspace are above-chance fidelity thresholds;
        // tiny literals are numeric tolerances (epsilon bands, drift
        // margins), which the policy does not centralise.
        if !(0.05..1.0).contains(&v) {
            continue;
        }
        let line_toks = |l: u32| toks.iter().filter(move |t| t.line == l);
        // `(a - b).abs() < eps` is a tolerance comparison, not a floor.
        if line_toks(t.line).any(|t| is_ident(t, "abs")) {
            continue;
        }
        let named = line_toks(t.line)
            .chain(line_toks(t.line.saturating_sub(1)))
            .any(|t| {
                t.kind == TokKind::Ident && {
                    let low = t.text.to_ascii_lowercase();
                    low.contains("fidelity") || low.contains("accuracy")
                }
            });
        let thresholdish = line_toks(t.line)
            .any(|t| t.kind == TokKind::Punct && matches!(t.text.as_str(), "<" | ">"))
            || line_toks(t.line).any(|t| is_ident(t, "const"));
        if named && thresholdish {
            hits.push((t.line, t.text.clone()));
        }
    }
    for (line, text) in hits {
        ctx.emit(
            out,
            "stat-floor-locality",
            line,
            format!(
            "fidelity/accuracy threshold literal `{text}` outside klinq_core::stat_floors — \
            floors live there under the raise-shots-never-loosen-floors policy"
            ),
        );
    }
}

/// Modules that must stay free of ambient nondeterminism: the wire
/// codec (frames must encode identically), fixed-point and DSP kernels
/// (bitwise-equivalence oracles), and persist encode/decode
/// (load-then-predict must equal train-then-predict).
fn determinism_scope(path: &str) -> bool {
    path == "crates/klinq-serve/src/wire/codec.rs"
        || path.starts_with("crates/klinq-fixed/src/")
        || path.starts_with("crates/klinq-dsp/src/")
        || path == "crates/klinq-core/src/persist.rs"
}

/// Rule `determinism`: no wall-clock or entropy taps in deterministic
/// modules (outside `#[cfg(test)]`).
fn rule_determinism(ctx: &FileInfo<'_>, out: &mut Vec<Finding>) {
    if !determinism_scope(ctx.path) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let mut hits: Vec<(u32, String)> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_spans(&ctx.tests, t.line) {
            continue;
        }
        let path_call = |name: &str| {
            (t.text == "Instant" || t.text == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
                && toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
                && toks.get(i + 3).is_some_and(|t| is_ident(t, name))
        };
        if path_call("now") {
            hits.push((t.line, format!("{}::now", t.text)));
        } else if (t.text == "thread_rng" || t.text == "from_entropy")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
        {
            hits.push((t.line, format!("{}()", t.text)));
        } else if t.text == "random"
            && i >= 3
            && is_ident(&toks[i - 3], "rand")
            && is_punct(&toks[i - 2], ':')
            && is_punct(&toks[i - 1], ':')
        {
            hits.push((t.line, "rand::random".to_string()));
        }
    }
    for (line, what) in hits {
        ctx.emit(
            out,
            "determinism",
            line,
            format!(
            "ambient nondeterminism `{what}` in a deterministic module (wire codec / \
            fixed-point / DSP kernels / persist) — thread explicit seeds or timestamps in"
            ),
        );
    }
}

/// Rule `lossy-cast`: `as_f64(...)`-derived values narrowed with
/// `as <int>` silently truncate and wrap — the exact benchdiff PoolSize
/// bug from PR 5. Applies workspace-wide, tests included.
fn rule_lossy_cast(ctx: &FileInfo<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    let mut hits: Vec<(u32, String, String)> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "as_f64" && t.text != "as_f32") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
            continue;
        }
        let Some(close) = matching(toks, i + 1, '(', ')') else {
            continue;
        };
        // Walk the rest of the expression: `?` and chained method calls
        // keep the value float-typed (`.unwrap_or(0.0)`, `.expect(..)`).
        let mut k = close + 1;
        loop {
            if toks.get(k).is_some_and(|t| is_punct(t, '?')) {
                k += 1;
                continue;
            }
            if toks.get(k).is_some_and(|t| is_punct(t, '.'))
                && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 2).is_some_and(|t| is_punct(t, '('))
            {
                match matching(toks, k + 2, '(', ')') {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            break;
        }
        if toks.get(k).is_some_and(|t| is_ident(t, "as")) {
            if let Some(ty) = toks.get(k + 1) {
                if ty.kind == TokKind::Ident && INT_TYPES.contains(&ty.text.as_str()) {
                    hits.push((t.line, t.text.clone(), ty.text.clone()));
                }
            }
        }
    }
    for (line, src, ty) in hits {
        ctx.emit(
            out,
            "lossy-cast",
            line,
            format!(
            "`{src}(..) as {ty}` silently truncates/wraps — parse integers with `as_u64()` \
            or use a checked conversion (the benchdiff PoolSize bug class)"
            ),
        );
    }
}

/// Lints one file's source. `path` must be repo-relative with forward
/// slashes — rules are scoped by path (e.g. `no-panic-serve` only fires
/// under `crates/klinq-serve/src/`).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let path = path.replace('\\', "/");
    let lexed = lex(src);
    let tests = test_spans(&lexed.tokens);
    let comment_ends = comment_block_ends(&lexed.comments);
    let mut annotation_findings = Vec::new();
    let allows = parse_allows(&lexed.comments, &mut annotation_findings);
    for f in &mut annotation_findings {
        f.file = path.clone();
    }

    let ctx = FileInfo {
        path: &path,
        lexed: &lexed,
        tests,
        comment_ends,
    };
    let mut raw = Vec::new();
    rule_no_panic_serve(&ctx, &mut raw);
    rule_unsafe_confinement(&ctx, &mut raw);
    rule_stat_floor_locality(&ctx, &mut raw);
    rule_determinism(&ctx, &mut raw);
    rule_lossy_cast(&ctx, &mut raw);

    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|a| a.rule == f.rule && a.from <= f.line && f.line <= a.to)
        })
        .collect();
    findings.append(&mut annotation_findings);
    findings.sort();
    findings
}

/// The directories the workspace walk scans. Everything else —
/// `vendor/` work-alikes standing in for registry crates, `target/`,
/// fixture corpora — is out of policy scope. `vendor/epoll` is the one
/// vendored crate that is genuinely first-party systems code (the
/// reactor's syscall bindings), so it is scanned.
pub const SCAN_ROOTS: [&str; 6] = ["src", "crates", "tools", "tests", "examples", "vendor/epoll"];

/// Collects the repo-relative paths of every first-party `.rs` file
/// under `root`, sorted, skipping `target/` and `fixtures/` dirs.
///
/// # Errors
///
/// Propagates directory-walk I/O errors with the offending path.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    if !root.is_dir() {
        return Err(format!("{}: not a directory", root.display()));
    }
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<(String, PathBuf)> = out
        .into_iter()
        .filter_map(|p| {
            let r = p.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            Some((r, p))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every first-party file under `root`.
///
/// # Errors
///
/// Propagates walk/read I/O errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for (rel, path) in workspace_files(root)? {
        let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let src = String::from_utf8_lossy(&bytes);
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort();
    Ok(findings)
}

/// A per-rule baseline: previously-accepted findings that do not fail
/// the build (so the gate can land before a cleanup finishes). Entries
/// match on (rule, file, message) — not line, so unrelated edits moving
/// a baselined site do not resurrect it.
#[derive(Debug, Default)]
pub struct BaselineFile {
    entries: Vec<(String, String, String)>,
}

impl BaselineFile {
    /// Parses the baseline JSON (`{"version":1,"entries":[{rule,file,message}]}`).
    ///
    /// # Errors
    ///
    /// Malformed JSON or a missing/duplicate field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("baseline: {e}"))?;
        let entries = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline: missing `entries` array")?;
        let mut out = Vec::new();
        for e in entries {
            let field = |k: &str| -> Result<String, String> {
                Ok(e.get(k)
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("baseline entry missing `{k}`"))?
                    .to_string())
            };
            out.push((field("rule")?, field("file")?, field("message")?));
        }
        Ok(BaselineFile { entries: out })
    }

    /// Whether `f` is baselined.
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|(r, fi, m)| r == f.rule && fi == &f.file && m == &f.message)
    }

    /// Splits findings into (active, baselined-count).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let total = findings.len();
        let active: Vec<Finding> = findings.into_iter().filter(|f| !self.covers(f)).collect();
        let baselined = total - active.len();
        (active, baselined)
    }

    /// Renders `findings` as baseline JSON (for `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let entries: Vec<Value> = findings
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("rule".to_string(), Value::Str(f.rule.to_string())),
                    ("file".to_string(), Value::Str(f.file.clone())),
                    ("message".to_string(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            ("entries".to_string(), Value::Array(entries)),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Machine-readable report (`--json`): stable field order, findings
/// sorted by (file, line, rule).
pub fn findings_to_json(findings: &[Finding], baselined: usize) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::UInt(u64::from(f.line))),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("version".to_string(), Value::UInt(1)),
        ("findings".to_string(), Value::Array(items)),
        ("baselined".to_string(), Value::UInt(baselined as u64)),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
}
