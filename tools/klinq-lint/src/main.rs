//! CLI: `klinq-lint [--root DIR] [--json] [--github] [--baseline PATH]
//! [--write-baseline PATH]`.
//!
//! Lints the workspace's first-party Rust sources against the invariant
//! rules (see the library docs / README "Static analysis"). Exits 0
//! when every finding is baselined or absent, 1 on any active
//! violation, 2 on usage/I-O errors.
//!
//! - `--json` prints the machine-readable report to stdout (human lines
//!   go to stderr instead so stdout stays pure JSON).
//! - `--github` additionally emits one GitHub `::error` annotation per
//!   active finding (shared format via `tools/ghannot`), which Actions
//!   renders inline in the PR diff.
//! - `--baseline` points at a baseline file (default:
//!   `<root>/tools/klinq-lint/baseline.json` when present); baselined
//!   findings are counted but do not fail the run.
//! - `--write-baseline` snapshots the current findings as a new
//!   baseline and exits 0 — the escape hatch for landing the gate
//!   before a cleanup lands.

#![forbid(unsafe_code)]

use ghannot::Annotation;
use klinq_lint::{findings_to_json, lint_workspace, BaselineFile};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut github = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--github" => github = true,
            "--root" => match iter.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match iter.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--write-baseline" => match iter.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage("--write-baseline needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("klinq-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let rendered = BaselineFile::render(&findings);
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("klinq-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("klinq-lint: wrote {} finding(s) to {}", findings.len(), path.display());
        return ExitCode::SUCCESS;
    }

    let default_baseline = root.join("tools/klinq-lint/baseline.json");
    let baseline_path = baseline_path.or_else(|| default_baseline.is_file().then_some(default_baseline));
    let baseline = match baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("klinq-lint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match BaselineFile::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("klinq-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => BaselineFile::default(),
    };
    let (active, baselined) = baseline.apply(findings);

    // Human-readable findings: stdout normally, stderr under --json so
    // stdout stays machine-parseable.
    let human = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for f in &active {
        human(f.to_string());
        if github {
            let ann = Annotation::error(format!("klinq-lint {}", f.rule), f.message.clone())
                .at(f.file.clone(), f.line);
            // Workflow commands are scanned from the whole job log, so
            // stderr is fine and keeps stdout pure under --json.
            eprintln!("{ann}");
        }
    }
    human(format!(
        "klinq-lint: {} active violation(s), {} baselined",
        active.len(),
        baselined
    ));
    if json {
        println!("{}", findings_to_json(&active, baselined));
    }
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("klinq-lint: {err}");
    eprintln!(
        "usage: klinq-lint [--root DIR] [--json] [--github] [--baseline PATH] [--write-baseline PATH]"
    );
    ExitCode::from(2)
}
