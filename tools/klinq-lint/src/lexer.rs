//! A small Rust lexer that is exactly comment/string/char-literal aware.
//!
//! The rule engine needs to know which bytes of a source file are *code*
//! and which are comments or literal text — `// a comment mentioning
//! unwrap()` or `"a string containing panic!"` must never fire a rule —
//! plus the comments themselves (for `// SAFETY:` and `// klinq-lint:
//! allow(...)` parsing). Full parsing (`syn`) is out: the workspace
//! builds with no registry access, so this lexer hand-rolls the token
//! classes that matter and nothing more:
//!
//! - line (`//`) and block (`/* */`, nested) comments, recorded with
//!   their line spans so annotation rules can attach them to code;
//! - string (`"..."`), raw string (`r"..."`, `r#"..."#`, any hash
//!   count), byte-string (`b"..."`, `br#"..."#`) and char/byte-char
//!   (`'x'`, `b'\n'`) literals, including escapes;
//! - lifetimes (`'a`) disambiguated from char literals;
//! - raw identifiers (`r#fn`);
//! - numbers, classified int vs float (suffixes, `_` separators,
//!   exponents, hex/octal/binary prefixes);
//! - identifiers and single-character punctuation.
//!
//! The lexer is total: any byte sequence (after lossy UTF-8 conversion)
//! lexes to *some* token stream without panicking — property-tested in
//! `tests/lexer_props.rs` against arbitrary byte soup. Malformed input
//! (unterminated strings/comments) degrades to a best-effort token
//! rather than an error; the linter lints code that `rustc` already
//! accepted, so error recovery only needs to be non-crashing.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime (`'a`), including the quote in its text.
    Lifetime,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal of any flavour (content not retained).
    Str,
    /// Char or byte-char literal (content not retained).
    Char,
    /// Any other single character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text for `Ident`/`Int`/`Float`/`Punct` tokens (raw
    /// identifiers drop their `r#` prefix so `r#fn` compares as `fn`);
    /// empty for string/char literals, whose content never matters to a
    /// rule.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment, with its line span (block comments may span lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (== `line` for line comments).
    pub end_line: u32,
}

/// A lexed source file: code tokens plus the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.pos += 2; // `//`
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.comments.push(Comment {
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.pos += 2; // `/*`
        let start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    let end = self.pos;
                    self.pos += 2;
                    if depth == 0 {
                        let text: String = self.chars[start..end].iter().collect();
                        self.out.comments.push(Comment {
                            text: text.trim_start_matches(['*', '!']).trim().to_string(),
                            line,
                            end_line: self.line,
                        });
                        return;
                    }
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.comments.push(Comment {
            text: text.trim_start_matches(['*', '!']).trim().to_string(),
            line,
            end_line: self.line,
        });
    }

    /// Consumes a `"..."` body starting *after* the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body starting *after* the opening quote,
    /// terminated by `"` followed by `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.pos += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }

    /// Tries to lex a string-ish literal at an `r`/`b` prefix. Returns
    /// true when it consumed one.
    fn try_prefixed_literal(&mut self) -> bool {
        let line = self.line;
        let c0 = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        // Offsets past the `b`/`r`/`br` prefix under trial.
        let (raw_at, after_prefix) = match (c0, self.peek(1)) {
            ('b', Some('r')) => (1, 2),
            ('b', Some('"')) => {
                self.pos += 2;
                self.string_body();
                self.push(TokKind::Str, String::new(), line);
                return true;
            }
            ('b', Some('\'')) => {
                self.pos += 1; // the char-literal path handles the rest
                self.char_literal();
                return true;
            }
            ('r', _) => (0, 1),
            _ => return false,
        };
        // From `after_prefix`, a raw string is `#*` then `"`. Anything
        // else (e.g. a raw identifier `r#fn`, or a plain ident starting
        // with r/b) is not ours.
        let mut hashes = 0usize;
        while self.peek(after_prefix + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(after_prefix + hashes) != Some('"') {
            // `r#ident` raw identifier: consume `r#` and let the ident
            // path lex the rest, so `r#fn` compares as `fn`.
            if raw_at == 0 && hashes == 1 {
                if let Some(c) = self.peek(2) {
                    if c == '_' || c.is_alphabetic() {
                        self.pos += 2;
                        self.ident();
                        return true;
                    }
                }
            }
            return false;
        }
        self.pos += after_prefix + hashes + 1;
        self.raw_string_body(hashes);
        self.push(TokKind::Str, String::new(), line);
        let _ = raw_at;
        true
    }

    /// Lexes at a `'`: lifetime or char literal.
    fn quote(&mut self) {
        let line = self.line;
        // Lifetime: `'` ident-start, and the char after the ident run is
        // not another `'` (which would make it a char literal like 'a').
        if let Some(c1) = self.peek(1) {
            if c1 == '_' || c1.is_alphabetic() {
                let mut k = 2;
                while let Some(c) = self.peek(k) {
                    if c == '_' || c.is_alphanumeric() {
                        k += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(k) != Some('\'') {
                    let text: String = self.chars[self.pos..self.pos + k].iter().collect();
                    self.pos += k;
                    self.push(TokKind::Lifetime, text, line);
                    return;
                }
            }
        }
        self.char_literal();
    }

    /// Consumes a char/byte-char literal starting at the `'`.
    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        // Scan to the closing quote, honouring escapes; give up at a
        // newline or EOF (malformed input — emit what we have).
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    break;
                }
                '\n' => break,
                _ => {
                    self.bump();
                }
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let hexish = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('o') | Some('b'));
        let consume_run = |lx: &mut Self| {
            while let Some(c) = lx.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    lx.pos += 1;
                } else {
                    break;
                }
            }
            // Exponent sign: `1e-5` — the run stops at `-`; absorb the
            // sign and continue when an `e`/`E` precedes it (non-hex).
            if !hexish
                && matches!(lx.chars.get(lx.pos.wrapping_sub(1)), Some('e') | Some('E'))
                && matches!(lx.peek(0), Some('+') | Some('-'))
                && lx.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                lx.pos += 1;
                while let Some(c) = lx.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        lx.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        };
        consume_run(self);
        // Fractional part: `.` followed by a digit (so `1..2` ranges and
        // `1.max()` method calls stay untouched).
        if !hexish
            && self.peek(0) == Some('.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            consume_run(self);
        } else if !hexish
            && self.peek(0) == Some('.')
            && !self.peek(1).is_some_and(|c| c == '.' || c == '_' || c.is_alphabetic())
        {
            // Trailing-dot float `1.` (not `1..` / `1.f()`).
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let is_float = !hexish
            && (text.contains('.')
                || text.ends_with("f32")
                || text.ends_with("f64")
                || text
                    .trim_end_matches(|c: char| c.is_ascii_digit() || c == '_' || c == '+' || c == '-')
                    .ends_with(['e', 'E']));
        self.push(if is_float { TokKind::Float } else { TokKind::Int }, text, line);
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let line = self.line;
                    self.bump();
                    self.string_body();
                    self.push(TokKind::Str, String::new(), line);
                }
                '\'' => self.quote(),
                'r' | 'b' => {
                    if !self.try_prefixed_literal() {
                        self.ident();
                    }
                }
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }
}

/// Lexes `src` into tokens and comments. Total: never panics, for any
/// input.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_content_from_tokens() {
        let lx = lex("let x = \"unwrap()\"; // panic! here\n/* also unwrap() */ y");
        assert!(lx.tokens.iter().all(|t| !t.text.contains("unwrap") && !t.text.contains("panic")));
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].text, "panic! here");
        assert_eq!(lx.comments[1].text, "also unwrap()");
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings() {
        let toks = kinds(r####"a r"x" r#""quoted""# br##"deep "# end"## b"bytes" z"####);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "z"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers_compare_unprefixed() {
        let toks = kinds("r#fn r#type plain");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["fn", "type", "plain"]);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        for (src, kind) in [
            ("42", TokKind::Int),
            ("1_000u64", TokKind::Int),
            ("0x1e5", TokKind::Int),
            ("0b1010", TokKind::Int),
            ("1.0", TokKind::Float),
            ("0.72", TokKind::Float),
            ("1e-5", TokKind::Float),
            ("2.5e3", TokKind::Float),
            ("1f64", TokKind::Float),
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src} lexed as {toks:?}");
            assert_eq!(toks[0].0, kind, "{src}");
        }
        // Ranges and method calls on ints keep the dot out of the number.
        let toks = kinds("1..2");
        assert_eq!(toks[0], (TokKind::Int, "1".to_string()));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lx = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lx.tokens.len(), 1);
        assert_eq!(lx.tokens[0].text, "code");
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'\\", "b'", "'", "r#"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn line_numbers_track_newlines_including_in_literals() {
        let lx = lex("a\n\"str\nover\nlines\"\nb");
        let a = &lx.tokens[0];
        let b = &lx.tokens[2];
        assert_eq!(a.line, 1);
        assert_eq!(lx.tokens[1].line, 2);
        assert_eq!(b.line, 5);
    }
}
