//! Golden test for the `--json` report shape, plus a baseline
//! round-trip: `render` → `parse` → `apply` must neutralise exactly the
//! findings it was rendered from.
//!
//! Regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -p klinq-lint --test report`.

use klinq_lint::{findings_to_json, lint_source, BaselineFile};
use std::path::PathBuf;

fn lossy_cast_findings() -> Vec<klinq_lint::Finding> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/fx_lossy_cast.rs");
    let src = std::fs::read_to_string(path).expect("fixture readable");
    lint_source("src/fx_lossy_cast.rs", &src)
}

#[test]
fn json_report_matches_the_golden_file() {
    let findings = lossy_cast_findings();
    assert!(!findings.is_empty(), "fixture fires");

    // Baseline away the first finding to exercise the whole pipeline.
    let baseline_json = BaselineFile::render(&findings[..1]);
    let baseline = BaselineFile::parse(&baseline_json).expect("rendered baseline parses");
    let (active, baselined) = baseline.apply(findings);
    assert_eq!(baselined, 1, "render/parse/apply round-trips one entry");

    let got = findings_to_json(&active, baselined);
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{got}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden file (UPDATE_GOLDEN=1 to create)");
    assert_eq!(got.trim_end(), want.trim_end(), "JSON report drifted from tests/golden/report.json");
}

#[test]
fn an_unrelated_baseline_neutralises_nothing() {
    let findings = lossy_cast_findings();
    let baseline = BaselineFile::parse(
        r#"{"version":1,"entries":[{"rule":"lossy-cast","file":"somewhere/else.rs","message":"x"}]}"#,
    )
    .expect("valid baseline");
    let n = findings.len();
    let (active, baselined) = baseline.apply(findings);
    assert_eq!((active.len(), baselined), (n, 0));
}

#[test]
fn malformed_baselines_are_rejected() {
    assert!(BaselineFile::parse("not json").is_err());
    assert!(BaselineFile::parse(r#"{"version":1}"#).is_err());
    assert!(BaselineFile::parse(r#"{"version":1,"entries":[{"rule":"x"}]}"#).is_err());
}
