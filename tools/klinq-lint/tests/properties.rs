//! Totality properties: the lexer and the whole lint pipeline must
//! never panic, whatever bytes they are fed — the linter runs on every
//! tree state CI ever sees, including mid-refactor syntax errors.

use klinq_lint::lexer::lex;
use klinq_lint::lint_source;
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        let lines = src.split('\n').count() as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= lines, "token line {} of {lines}", t.line);
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.end_line >= c.line);
        }
    }

    #[test]
    fn lint_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        // Exercise every path-scoped rule: the serve path, an
        // unsafe-allowlisted file, a deterministic module, and a crate
        // root with an attribute requirement.
        let src = String::from_utf8_lossy(&bytes);
        let _ = lint_source("crates/klinq-serve/src/fuzz.rs", &src);
        let _ = lint_source("vendor/epoll/src/fuzz.rs", &src);
        let _ = lint_source("crates/klinq-fixed/src/lib.rs", &src);
        let _ = lint_source("src/lib.rs", &src);
    }

    #[test]
    fn lexing_twice_is_deterministic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(x.line, y.line);
        }
    }
}
