//! The self-test that makes `cargo test` alone enforce the gate: the
//! checked-in tree must be lint-clean (modulo the committed baseline,
//! when one exists), exactly as the CI `lint-invariants` job asserts.

use klinq_lint::{lint_workspace, BaselineFile};
use std::path::PathBuf;

#[test]
fn the_checked_in_tree_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace walk");
    let baseline_path = root.join("tools/klinq-lint/baseline.json");
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path).expect("baseline readable");
        BaselineFile::parse(&text).expect("baseline parses")
    } else {
        BaselineFile::default()
    };
    let (active, _baselined) = baseline.apply(findings);
    assert!(
        active.is_empty(),
        "the tree has {} active lint violation(s):\n{}",
        active.len(),
        active.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
