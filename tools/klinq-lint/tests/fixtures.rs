//! Corpus-driven rule tests. Each file under `fixtures/` declares the
//! workspace path it pretends to live at on its first line
//! (`// lint-fixture: path=...`) and the findings it must produce:
//!
//! - a trailing `//~ <rule>` marker expects a finding of that rule on
//!   its own line;
//! - a `// lint-expect: <rule>@<line>` header expects a finding at an
//!   explicit line — needed when the finding lands on line 1 (crate-root
//!   checks) or on an annotation line whose text the marker would alter.
//!
//! The assertion is an exact set equality, so a fixture documents both
//! what fires and what stays quiet.

use klinq_lint::lint_source;
use std::collections::BTreeSet;
use std::path::PathBuf;

type Expected = BTreeSet<(String, u32)>;

fn expected(src: &str) -> Expected {
    let mut out = Expected::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if let Some(rest) = line.split("//~").nth(1) {
            for rule in rest.split_whitespace() {
                out.insert((rule.to_string(), lineno));
            }
        }
        if let Some(rest) = line.trim().strip_prefix("// lint-expect:") {
            let (rule, at) = rest.trim().split_once('@').expect("lint-expect: <rule>@<line>");
            out.insert((
                rule.trim().to_string(),
                at.trim().parse().expect("lint-expect line number"),
            ));
        }
    }
    out
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn every_fixture_matches_its_expectations() {
    let mut checked = 0usize;
    let mut rules_seen: BTreeSet<String> = BTreeSet::new();
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let first = src.lines().next().unwrap_or("");
        let vpath = first
            .split("path=")
            .nth(1)
            .unwrap_or_else(|| panic!("{}: missing `// lint-fixture: path=...`", path.display()))
            .trim()
            .to_string();
        let got: Expected = lint_source(&vpath, &src)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect();
        let want = expected(&src);
        assert_eq!(got, want, "fixture {} (as {vpath})", path.display());
        rules_seen.extend(want.into_iter().map(|(r, _)| r));
        checked += 1;
    }
    assert!(checked >= 10, "expected a corpus, found {checked} fixtures");
    // Every rule (and the annotation meta-rule) has at least one firing
    // fixture; the suppressed halves are asserted by the exact-set match.
    for rule in klinq_lint::RULES.iter().chain([&klinq_lint::ANNOTATION_RULE]) {
        assert!(rules_seen.contains(*rule), "no fixture fires `{rule}`");
    }
}

#[test]
fn findings_have_stable_display_and_order() {
    let src = std::fs::read_to_string(fixtures_dir().join("fx_no_panic.rs")).expect("fixture");
    let findings = lint_source("crates/klinq-serve/src/fx_no_panic.rs", &src);
    let mut sorted = findings.clone();
    sorted.sort();
    assert_eq!(findings, sorted, "lint_source returns sorted findings");
    let first = findings.first().expect("fixture fires");
    assert_eq!(
        first.to_string(),
        format!("{}:{}: [{}] {}", first.file, first.line, first.rule, first.message)
    );
}
