//! KLiNQ — knowledge-distillation-assisted lightweight neural networks for
//! superconducting-qubit readout, reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`fixed`] — Q16.16 fixed-point arithmetic (the FPGA number format).
//! - [`nn`] — from-scratch feed-forward neural network library with
//!   knowledge-distillation losses.
//! - [`sim`] — five-qubit dispersive-readout trace simulator (the dataset
//!   substrate standing in for the Lienhard et al. measurements).
//! - [`dsp`] — matched filters, interval averaging, normalization, and the
//!   student-input feature pipeline.
//! - [`fpga`] — bit-accurate fixed-point datapath plus latency/resource
//!   models of the ZCU216 implementation.
//! - [`core`] — the KLiNQ system: teacher training, distillation, the
//!   per-qubit independent discriminators (generic over the
//!   float/Q16.16 [`core::Backend`]), model persistence
//!   ([`core::persist`]), baselines (Baseline FNN, HERQULES, quantized
//!   FNN) and the paper's experiments.
//! - [`serve`] — the serving stack: micro-batching request coalescing
//!   with backpressure and priority lanes, multi-device sharding, and a
//!   binary wire protocol over TCP for out-of-process clients.
//!
//! # Quickstart
//!
//! ```no_run
//! use klinq::core::experiments::ExperimentConfig;
//! use klinq::core::KlinqSystem;
//!
//! // Train a complete (scaled-down) KLiNQ system and read a qubit.
//! let config = ExperimentConfig::smoke();
//! let system = KlinqSystem::train(&config).expect("training succeeds");
//! let report = system.evaluate();
//! println!("five-qubit geometric-mean fidelity: {:.3}", report.geometric_mean());
//! ```

#![forbid(unsafe_code)]

pub use klinq_core as core;
pub use klinq_dsp as dsp;
pub use klinq_fixed as fixed;
pub use klinq_fpga as fpga;
pub use klinq_nn as nn;
pub use klinq_serve as serve;
pub use klinq_sim as sim;
