//! Integration tests of the comparator systems against a shared dataset.

use klinq::core::baselines::{
    quantize_network, HerqulesConfig, HerqulesDiscriminator, MfThreshold,
};
use klinq::core::teacher::{Teacher, TeacherConfig};
use klinq::core::stat_floors as floors;
use klinq::sim::{FiveQubitDevice, ReadoutDataset, SimConfig};

fn datasets() -> &'static (ReadoutDataset, ReadoutDataset) {
    use std::sync::OnceLock;
    static DATA: OnceLock<(ReadoutDataset, ReadoutDataset)> = OnceLock::new();
    DATA.get_or_init(|| {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        (
            ReadoutDataset::generate(&device, &config, 512, 31),
            ReadoutDataset::generate(&device, &config, 512, 32),
        )
    })
}

#[test]
fn all_baselines_discriminate_the_easy_qubit() {
    let (train, test) = datasets();
    let qb = 0; // solid SNR at the shortened smoke duration
    let samples = test.samples();

    let mf = MfThreshold::train(train, qb).expect("mf trains");
    let mf_f = mf.fidelity_at(test, samples);
    assert!(mf_f > floors::SMOKE_E2E_MF_FIDELITY, "matched filter {mf_f}");

    let hq = HerqulesDiscriminator::train(&HerqulesConfig::default(), train, qb)
        .expect("herqules trains");
    let hq_f = hq.fidelity_at(test, samples);
    assert!(hq_f > floors::SMOKE_E2E_HERQULES_FIDELITY, "herqules {hq_f}");

    let teacher = Teacher::train(&TeacherConfig::smoke(), train, qb).expect("teacher trains");
    let t_f = teacher.fidelity(test);
    assert!(t_f > floors::SMOKE_E2E_TEACHER_FIDELITY, "teacher {t_f}");
}

#[test]
fn quantization_degrades_gracefully_with_bits() {
    let (train, test) = datasets();
    let teacher = Teacher::train(&TeacherConfig::smoke(), train, 0).expect("teacher trains");
    let base = teacher.fidelity(test);
    let f8 = teacher.fidelity_with_net(&quantize_network(teacher.net(), 8), test);
    let f3 = teacher.fidelity_with_net(&quantize_network(teacher.net(), 3), test);
    // 8-bit should track the float model closely; 3-bit visibly degrades
    // (this is the reference-[10] trade-off the paper mentions).
    assert!((base - f8).abs() < 0.05, "8-bit: {base} vs {f8}");
    assert!(f3 <= f8 + 0.02, "3-bit {f3} should not beat 8-bit {f8}");
}

#[test]
fn every_qubit_has_a_working_mf_threshold() {
    let (train, test) = datasets();
    let samples = test.samples();
    for qb in 0..5 {
        let mf = MfThreshold::train(train, qb).expect("mf trains");
        let f = mf.fidelity_at(test, samples);
        // Qubit 2 is heavily crosstalk-limited at 300 ns; everyone else
        // is comfortably above 0.8.
        let floor = if qb == 1 { 0.55 } else { 0.78 };
        assert!(f > floor, "qubit {}: {f}", qb + 1);
    }
}

#[test]
fn herqules_truncated_training_matches_duration() {
    let (train, test) = datasets();
    let half = train.samples() / 2;
    let h = HerqulesDiscriminator::train_at(&HerqulesConfig::default(), train, 0, half)
        .expect("herqules trains at half duration");
    let f = h.fidelity_at(test, half);
    // 150 ns of trace leaves very little signal mass on qubit 1 — only
    // demand a usable discriminator, not an accurate one.
    assert!(f > 0.55, "half-duration herqules {f}");
}
