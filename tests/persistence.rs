//! Model-persistence guarantees through the public facade: a saved and
//! reloaded system is indistinguishable from the in-memory one — every
//! prediction bitwise-identical on both backends — and malformed
//! artifacts fail with typed errors, never panics.

use klinq::core::{Backend, BatchDiscriminator, KlinqError, KlinqSystem};
use proptest::proptest;
use std::sync::OnceLock;

mod common;

fn system() -> &'static KlinqSystem {
    common::smoke_system()
}

/// The reloaded twin of the shared fixture, built once through a real
/// save → load file round trip.
fn reloaded() -> &'static KlinqSystem {
    static LOADED: OnceLock<KlinqSystem> = OnceLock::new();
    LOADED.get_or_init(|| {
        let dir = std::env::temp_dir().join("klinq_persistence_roundtrip");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("system.json");
        system().save(&path).expect("save");
        let loaded = KlinqSystem::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        loaded
    })
}

#[test]
fn loaded_system_compares_equal_and_reports_identically() {
    let original = system();
    let loaded = reloaded();
    assert_eq!(loaded, original);
    for backend in Backend::ALL {
        // FidelityReport is PartialEq on exact f64s — no tolerance.
        assert_eq!(loaded.evaluate_on(backend), original.evaluate_on(backend));
    }
}

#[test]
fn loaded_batched_classification_is_bitwise_identical() {
    let original = system();
    let loaded = reloaded();
    let shots = original.test_data().shots();
    for backend in Backend::ALL {
        let a = BatchDiscriminator::new(original.discriminators()).classify_shots_on(backend, shots);
        let b = BatchDiscriminator::new(loaded.discriminators()).classify_shots_on(backend, shots);
        assert_eq!(a, b, "batched predictions diverged on {backend}");
    }
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(24))]

    /// Any shot, any qubit, any prefix length, both backends: the loaded
    /// system must reproduce the original's decision exactly — including
    /// on truncated mid-circuit traces the system never saw at save time.
    #[test]
    fn any_measurement_survives_the_round_trip(
        shot_idx in 0usize..384,
        qb in 0usize..5,
        keep_num in 3usize..=10,
        backend_hw in proptest::bool::ANY,
    ) {
        let original = system();
        let loaded = reloaded();
        let backend = if backend_hw { Backend::Hardware } else { Backend::Float };
        let shot = original.test_data().shot(shot_idx % original.test_data().len());
        let t = &shot.traces[qb];
        // Keep between 30% and 100% of the trace, never below the
        // 100-sample floor FNN-B's averaging needs.
        let cut = (t.i.len() * keep_num / 10).max(100).min(t.i.len());
        let a = original.measure_on(backend, qb, &t.i[..cut], &t.q[..cut]);
        let b = loaded.measure_on(backend, qb, &t.i[..cut], &t.q[..cut]);
        proptest::prop_assert_eq!(a, b);
    }
}

#[test]
fn corrupt_truncated_and_missing_artifacts_are_typed_errors() {
    let dir = std::env::temp_dir().join("klinq_persistence_corrupt");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Missing file → Io.
    let err = KlinqSystem::load(&dir.join("does_not_exist.json")).unwrap_err();
    assert!(matches!(err, KlinqError::Io(_)), "{err}");

    // Truncated artifact (cut mid-JSON) → Artifact.
    let json = system().to_artifact_json().expect("serialize");
    let truncated_path = dir.join("truncated.json");
    std::fs::write(&truncated_path, &json[..json.len() / 3]).expect("write");
    let err = KlinqSystem::load(&truncated_path).unwrap_err();
    assert!(matches!(err, KlinqError::Artifact(_)), "{err}");

    // Arbitrary garbage → Artifact.
    let garbage_path = dir.join("garbage.json");
    std::fs::write(&garbage_path, "klinq but not json").expect("write");
    let err = KlinqSystem::load(&garbage_path).unwrap_err();
    assert!(matches!(err, KlinqError::Artifact(_)), "{err}");

    // Valid JSON, wrong shape → Artifact.
    let shape_path = dir.join("wrong_shape.json");
    std::fs::write(&shape_path, r#"{"format": "klinq-system", "version": 1}"#).expect("write");
    let err = KlinqSystem::load(&shape_path).unwrap_err();
    assert!(matches!(err, KlinqError::Artifact(_)), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
