//! Failure injection: degenerate data, saturating inputs, and invalid
//! requests must produce errors or clamped results — never panics or
//! silent corruption.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem, StudentArch};
use klinq::dsp::{FeaturePipeline, FeatureSpec, MatchedFilter, VecNormalizer};
use klinq::fixed::Q16_16;

mod common;

fn system() -> &'static KlinqSystem {
    common::smoke_system()
}

#[test]
fn constant_traces_fit_without_dividing_by_zero() {
    // Zero-variance features force the σ→1 fallback; the pipeline must
    // produce finite features rather than NaN/inf.
    let ground: Vec<(Vec<f32>, Vec<f32>)> =
        (0..8).map(|_| (vec![1.0; 60], vec![0.5; 60])).collect();
    let excited: Vec<(Vec<f32>, Vec<f32>)> =
        (0..8).map(|_| (vec![-1.0; 60], vec![-0.5; 60])).collect();
    let g: Vec<(&[f32], &[f32])> = ground.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
    let e: Vec<(&[f32], &[f32])> = excited.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
    let pipe = FeaturePipeline::fit(FeatureSpec::fnn_a(), &g, &e).expect("fit succeeds");
    let features = pipe.extract(&ground[0].0, &ground[0].1);
    assert!(features.iter().all(|f| f.is_finite()));
}

#[test]
fn saturating_inputs_report_overflow_instead_of_wrapping() {
    // Drive the hardware datapath with traces far outside the calibrated
    // range: the output must be a valid decision and overflows must be
    // accounted, not silently wrapped.
    let sys = system();
    let hw = sys.discriminator(0).hardware();
    let n = sys.test_data().samples();
    let huge = vec![30_000.0f32; n];
    let detail = hw.infer_detailed(&huge, &huge);
    assert!(detail.logit >= Q16_16::MIN && detail.logit <= Q16_16::MAX);
    // Either the normalizer absorbed it or the overflow counter noticed;
    // in both cases the call returns coherently.
    let _ = detail.overflow_count;
}

#[test]
fn nan_inputs_do_not_poison_the_fixed_point_path() {
    let sys = system();
    let hw = sys.discriminator(0).hardware();
    let n = sys.test_data().samples();
    let mut bad = vec![0.0f32; n];
    bad[7] = f32::NAN;
    // Q16.16 conversion maps NaN to zero; the decision is still produced.
    let detail = hw.infer_detailed(&bad, &bad);
    assert!(detail.logit.to_f32().is_finite());
}

#[test]
fn retraining_below_the_averaging_minimum_is_a_clean_error() {
    let sys = system();
    // FNN-B needs ≥100 samples per channel; ask for less.
    let err = sys.students_at(50).unwrap_err();
    match err {
        KlinqError::InvalidConfig(msg) => {
            assert!(msg.contains("averaging"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn matched_filter_single_shot_classes_are_usable() {
    // One trace per class: variance is zero everywhere, the regularizer
    // keeps the envelope finite.
    let a = vec![1.0f32; 16];
    let b = vec![-1.0f32; 16];
    let mf = MatchedFilter::train(&[a.as_slice()], &[b.as_slice()]).expect("trains");
    assert!(mf.envelope().iter().all(|w| w.is_finite()));
    assert!(mf.apply(&a) > mf.apply(&b));
}

#[test]
fn normalizer_rejects_empty_and_tolerates_extremes() {
    assert!(VecNormalizer::fit(&[]).is_err());
    let row = vec![f32::MAX / 2.0, -f32::MAX / 2.0];
    let n = VecNormalizer::fit(&[row.as_slice(), row.as_slice()]).expect("fit");
    let out = n.apply(&row);
    assert!(out.iter().all(|v| v.is_finite()));
}

#[test]
fn student_arch_bounds_are_enforced() {
    let result = std::panic::catch_unwind(|| StudentArch::for_qubit(7));
    assert!(result.is_err());
}

#[test]
fn invalid_experiment_configs_fail_before_training() {
    let mut c = ExperimentConfig::smoke();
    c.test_shots = 0;
    assert!(matches!(
        KlinqSystem::train(&c),
        Err(KlinqError::InvalidConfig(_))
    ));
}
