//! Workspace smoke test: all eight `examples/` must keep compiling.
//!
//! `cargo test` already builds the root package's examples, but only in
//! the test profile of the same invocation; this test pins the guarantee
//! explicitly by driving `cargo build --examples` itself, so a broken
//! example fails a named test instead of the whole harness invocation.
//!
//! The nested cargo uses its own target directory — sharing the parent's
//! would deadlock on cargo's build-directory lock.

use std::path::Path;
use std::process::Command;

#[test]
fn all_examples_compile() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let expected = [
        "quickstart",
        "mid_circuit",
        "duration_tradeoff",
        "crosstalk_compensation",
        "fpga_deployment",
        "serving",
        "sharded_serving",
        "live_recalibration",
    ];
    for name in expected {
        assert!(
            manifest_dir.join("examples").join(format!("{name}.rs")).exists(),
            "example `{name}` is missing from examples/"
        );
    }

    let target_dir = manifest_dir.join("target").join("examples-smoke");
    let output = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--offline"])
        .current_dir(manifest_dir)
        .env("CARGO_TARGET_DIR", &target_dir)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    for name in expected {
        assert!(
            target_dir.join("debug").join("examples").join(name).exists(),
            "example binary `{name}` was not produced"
        );
    }
}
