//! Cross-crate integration: simulator → training → distillation →
//! evaluation → FPGA compilation, all through the public facade.

use klinq::core::{KlinqSystem, StudentArch};
use klinq::fpga::latency::{avg_norm_stages, mf_stages, network_stages};

mod common;

fn system() -> &'static KlinqSystem {
    common::smoke_system()
}

#[test]
fn full_pipeline_trains_and_discriminates() {
    let sys = system();
    let report = sys.evaluate();
    assert_eq!(report.per_qubit().len(), 5);
    assert!(report.geometric_mean() > 0.7, "{report}");
    // F4Q (excluding the noisy qubit 2) always dominates F5Q.
    assert!(report.f4q() >= report.geometric_mean());
}

#[test]
fn students_are_the_paper_architectures() {
    let sys = system();
    for qb in 0..5 {
        let d = sys.discriminator(qb);
        let expected = StudentArch::for_qubit(qb);
        assert_eq!(d.arch(), expected);
        assert_eq!(d.student().net.num_params(), expected.num_params());
        assert_eq!(d.student().net.input_dim(), expected.input_dim());
    }
}

#[test]
fn compression_rate_exceeds_99_percent() {
    let sys = system();
    let teacher_params: usize = sys.teachers().iter().map(|t| t.net().num_params()).sum();
    let student_params: usize = sys
        .discriminators()
        .iter()
        .map(|d| d.student().net.num_params())
        .sum();
    // Smoke-scale teachers are shrunken, so compare against the paper
    // architecture counts for the real claim ...
    let paper = klinq::core::params::CompressionReport::paper_architectures();
    assert!(paper.ncr_vs_teacher > 0.998);
    // ... and sanity-check the trained sizes ordering (the smoke teacher
    // is deliberately shrunken, so only a loose ratio is meaningful here).
    assert!(student_params * 3 < teacher_params);
}

#[test]
fn fpga_and_float_paths_agree_on_decisions() {
    let sys = system();
    let data = sys.test_data();
    let mut disagreements = 0usize;
    let mut total = 0usize;
    for s in 0..data.len().min(128) {
        let shot = data.shot(s);
        for qb in 0..5 {
            let t = &shot.traces[qb];
            let float_state = sys.discriminator(qb).measure(&t.i, &t.q);
            let hw_state = sys.discriminator(qb).measure_hw(&t.i, &t.q);
            disagreements += (float_state != hw_state) as usize;
            total += 1;
        }
    }
    // Quantization may flip near-threshold shots only.
    assert!(
        (disagreements as f64) < 0.05 * total as f64,
        "{disagreements}/{total} disagreements"
    );
}

#[test]
fn mid_circuit_measurement_matches_batch_evaluation() {
    let sys = system();
    let data = sys.test_data();
    // measure() on each shot must reproduce the per-qubit fidelity that
    // evaluate() reports.
    let report = sys.evaluate();
    for qb in [0usize, 2, 4] {
        let labels = data.qubit_labels(qb);
        let correct = (0..data.len())
            .filter(|&s| {
                let t = &data.shot(s).traces[qb];
                sys.measure(qb, &t.i, &t.q) == (labels[s] == 1.0)
            })
            .count();
        let manual = correct as f64 / labels.len() as f64;
        assert!((manual - report.qubit(qb)).abs() < 1e-12, "qubit {}", qb + 1);
    }
}

#[test]
fn paper_design_point_latency_invariants() {
    // Full-duration (1 µs = 500 samples) structural facts, independent of
    // training: equal totals and the component splits of Table III.
    let a_total = mf_stages(500) + avg_norm_stages(500 / 15) + network_stages(&[31, 16, 8]);
    let b_total = mf_stages(500) + avg_norm_stages(500 / 100) + network_stages(&[201, 16, 8]);
    assert_eq!(a_total, b_total);
    for samples in [275, 375, 475, 500] {
        let a = mf_stages(samples) + avg_norm_stages(500 / 15) + network_stages(&[31, 16, 8]);
        assert_eq!(a, a_total, "{samples} samples");
    }
}

#[test]
fn per_duration_retraining_keeps_input_dims_fixed() {
    let sys = system();
    let samples = sys.test_data().samples();
    let students = sys.students_at(samples * 7 / 10).expect("retraining");
    for (qb, s) in students.iter().enumerate() {
        assert_eq!(
            s.net.input_dim(),
            StudentArch::for_qubit(qb).input_dim(),
            "qubit {}",
            qb + 1
        );
    }
}

#[test]
fn serde_round_trip_of_reports() {
    let sys = system();
    let report = sys.evaluate();
    let json = serde_json::to_string(&report).expect("serialize");
    let back: klinq::core::FidelityReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report, back);
}
