//! Smoke runs of every experiment through the public facade: one shared
//! trained system, every table/figure generated from it.

use klinq::core::experiments::{fig4, fig5, table1, table2, table3, ExperimentConfig};
use klinq::core::KlinqSystem;

mod common;

fn system() -> &'static KlinqSystem {
    common::smoke_system()
}

#[test]
fn table1_rows_and_orderings() {
    let config = ExperimentConfig::smoke();
    let t = table1::run_with_system(system(), &config).expect("table1");
    assert_eq!(t.rows.len(), 5);
    for row in &t.rows {
        assert_eq!(row.per_qubit.len(), 5);
        assert!(row.f5q > 0.5 && row.f5q <= 1.0, "{}: {}", row.design, row.f5q);
        assert!(row.f4q >= row.f5q, "{}: f4q {} < f5q {}", row.design, row.f4q, row.f5q);
    }
    // The distilled students must at least match the 8-bit quantized
    // big network on the geometric mean (the paper's point vs ref [10]).
    let klinq = t.row("KLiNQ").unwrap();
    assert!(klinq.f5q > 0.7);
}

#[test]
fn table2_rows_and_optima() {
    let t = table2::run_with_system(system());
    assert_eq!(t.rows.len(), 5);
    // Mixing per-qubit optimal durations can only help.
    for row in &t.rows {
        assert!(t.best_f5q >= row.f5q - 1e-12);
    }
    for (qb, &best) in t.best_per_qubit.iter().enumerate() {
        for row in &t.rows {
            assert!(best >= row.per_qubit[qb]);
        }
    }
}

#[test]
fn fig4_sweep_is_complete() {
    let config = ExperimentConfig::smoke();
    let f = fig4::run_with_system(system(), &config).expect("fig4");
    assert_eq!(f.points.len(), 11);
    assert_eq!(f.points[0].duration_ns, 500.0);
    assert_eq!(f.points[10].duration_ns, 1000.0);
    for p in &f.points {
        assert!(p.klinq_f5q > 0.5);
        assert!(p.herqules_f5q > 0.5);
    }
    assert!(f.klinq_wins() <= f.points.len());
}

#[test]
fn fig5_is_exact() {
    let f = fig5::run();
    assert_eq!(f.report.fnn_a_group_total, 1971);
    assert_eq!(f.report.fnn_b_group_total, 6754);
    assert!((f.report.ncr_vs_teacher - 0.9989).abs() < 2e-4);
}

#[test]
fn table3_report_structure() {
    let t = table3::run_with_system(system());
    assert_eq!(t.report.rows.len(), 5);
    // The shared MF unit scales with the design trace length (375 DSPs at
    // the paper's 1 µs; the smoke system deploys at 300 ns).
    let samples = system().test_data().samples();
    assert_eq!(
        t.report.rows[0].resources,
        klinq::fpga::resources::mf_resources(2 * samples)
    );
    assert!(t.report.total.lut > 0);
    let u = t.report.total.utilization(&klinq::fpga::ZCU216_CAPACITY);
    assert!(u.lut_pct < 100.0 && u.dsp_pct < 100.0);
    assert!(t.discrimination_stages > 0);
}

#[test]
fn experiment_results_serialize() {
    let config = ExperimentConfig::smoke();
    let t1 = table1::run_with_system(system(), &config).expect("table1");
    let json = serde_json::to_string(&t1).expect("serialize");
    assert!(json.contains("KLiNQ"));
    let t3 = table3::run_with_system(system());
    let json = serde_json::to_string(&t3).expect("serialize");
    assert!(json.contains("MF (shared)"));
}
