//! Shared fixture for the root-level integration-test binaries.
//!
//! Every binary that needs a trained system goes through
//! [`klinq::core::testkit`]'s disk cache, so one `cargo test` run trains
//! the smoke system at most once across the whole workspace instead of
//! once per test binary.

use klinq::core::KlinqSystem;
use std::path::Path;
use std::sync::OnceLock;

/// The shared smoke-scale system (trained once per workspace test run,
/// loaded from the target-dir cache everywhere else).
pub fn smoke_system() -> &'static KlinqSystem {
    static SYS: OnceLock<KlinqSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        klinq::core::testkit::cached_smoke_system(Path::new(env!("CARGO_TARGET_TMPDIR")))
    })
}
