//! Statistical integration tests pinning the simulator to the paper's
//! dataset structure and to its own analytic calibration.

use klinq::dsp::stats::Running;
use klinq::sim::trajectory::StateEvolution;
use klinq::sim::{FiveQubitDevice, ReadoutDataset, SimConfig};

#[test]
fn dataset_matches_paper_digitization() {
    let device = FiveQubitDevice::paper();
    let config = SimConfig::default();
    let data = ReadoutDataset::generate(&device, &config, 64, 5);
    // 2 ns sampling over 1 µs → 500 samples per quadrature → the flat
    // 1000-input teacher layout.
    assert_eq!(data.samples(), 500);
    assert_eq!(data.shot(0).traces[0].flatten().len(), 1000);
}

#[test]
fn noise_level_matches_calibration() {
    let device = FiveQubitDevice::paper();
    let config = SimConfig::default();
    let data = ReadoutDataset::generate(&device, &config, 256, 6);
    // Residuals around the per-class mean trace estimate the noise σ;
    // crosstalk adds a little on top, so allow +15%.
    for qb in 0..5 {
        let (ground, _) = data.class_split(qb);
        let n = data.samples();
        let mut mean = vec![0.0f64; n];
        for (i, _) in &ground {
            for (m, &x) in mean.iter_mut().zip(i.iter()) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= ground.len() as f64;
        }
        let mut resid = Running::new();
        for (i, _) in &ground {
            for (k, &x) in i.iter().enumerate() {
                resid.push(x as f64 - mean[k]);
            }
        }
        let sigma = device.qubit(qb).noise_sigma;
        let measured = resid.std_dev();
        assert!(
            measured > sigma * 0.97 && measured < sigma * 1.15,
            "qubit {}: measured σ {measured:.3} vs calibrated {sigma:.3}",
            qb + 1
        );
    }
}

#[test]
fn crosstalk_is_visible_in_the_mean_traces() {
    // Qubit 2's mean trace must depend on its neighbours' states: split
    // its ground-state shots by qubit 1's prepared state and compare
    // late-trace means.
    let device = FiveQubitDevice::paper();
    let config = SimConfig::default();
    let data = ReadoutDataset::generate(&device, &config, 2048, 7);
    let mut with_n1 = Running::new();
    let mut without_n1 = Running::new();
    for s in data.shots() {
        if s.prepared[1] {
            continue; // only qubit-2 ground shots
        }
        let acc = if s.prepared[0] { &mut with_n1 } else { &mut without_n1 };
        for &x in &s.traces[1].i {
            acc.push(x as f64);
        }
    }
    let separation = (with_n1.mean() - without_n1.mean()).abs();
    // λ(2←1) = 0.16 over qubit 1's ~±0.6 average I separation → ≈ 0.1;
    // the statistical error at this sample count is ≈ 0.01.
    assert!(
        separation > 0.05,
        "crosstalk from qubit 1 into qubit 2 invisible: Δ = {separation}"
    );
}

#[test]
fn decay_rate_follows_t1_for_every_qubit() {
    let device = FiveQubitDevice::paper();
    let config = SimConfig::default();
    let data = ReadoutDataset::generate(&device, &config, 2048, 8);
    for qb in 0..5 {
        let t1 = device.qubit(qb).t1_ns;
        let expected = 1.0 - (-config.trace_duration_ns / t1).exp();
        let mut excited = 0usize;
        let mut decayed = 0usize;
        for s in data.shots() {
            if s.prepared[qb] {
                excited += 1;
                if matches!(s.evolutions[qb], StateEvolution::DecayedAt(_)) {
                    decayed += 1;
                }
            }
        }
        let rate = decayed as f64 / excited as f64;
        assert!(
            (rate - expected).abs() < 0.05,
            "qubit {}: decay rate {rate:.3} vs expected {expected:.3}",
            qb + 1
        );
    }
}

#[test]
fn different_durations_share_trajectory_prefixes() {
    // Generating at 500 ns must equal the first half of a 1 µs shot's
    // mean dynamics: verify via class-mean traces (noise differs because
    // the RNG stream advances differently).
    let device = FiveQubitDevice::paper();
    let long = ReadoutDataset::generate(&device, &SimConfig::default(), 2048, 9);
    let short = ReadoutDataset::generate(&device, &SimConfig::with_duration_ns(500.0), 2048, 10);
    // Average a 32-sample window over ~1000 ground shots to push the
    // statistical error well below the tolerance.
    let mean_of = |data: &ReadoutDataset, qb: usize, k: usize| -> f64 {
        let (ground, _) = data.class_split(qb);
        let total: f64 = ground
            .iter()
            .map(|(i, _)| i[k..k + 32].iter().map(|&x| x as f64).sum::<f64>())
            .sum();
        total / (ground.len() * 32) as f64
    };
    for qb in 0..5 {
        for k in [8usize, 100, 216] {
            let a = mean_of(&long, qb, k);
            let b = mean_of(&short, qb, k);
            assert!(
                (a - b).abs() < 0.15,
                "qubit {} window {k}: {a:.3} vs {b:.3}",
                qb + 1
            );
        }
    }
}
