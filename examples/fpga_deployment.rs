//! FPGA deployment walk-through: quantize, compile, and verify.
//!
//! Shows the deployment half of the paper: the trained students are
//! compiled to a Q16.16 fixed-point datapath (quantized weights, shift
//! normalization, matched-filter MAC), the latency and resource reports
//! are produced, and the fixed-point decisions are verified against the
//! float reference — the software equivalent of signing off an RTL
//! implementation against its golden model.
//!
//! Run with `cargo run --release --example fpga_deployment`.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem};
use klinq::fpga::report::DesignReport;
use klinq::fpga::Clock;

fn main() -> Result<(), KlinqError> {
    println!("Training the system (smoke scale) …");
    let system = KlinqSystem::train(&ExperimentConfig::smoke())?;
    let samples = system.test_data().samples();

    // Per-configuration latency breakdowns.
    for (name, qb) in [("FNN-A (Q1)", 0usize), ("FNN-B (Q2)", 1usize)] {
        let hw = system.discriminator(qb).hardware();
        println!("{name}: {}", hw.latency());
        println!(
            "  at the paper's 100 MHz system clock: {:.0} ns",
            hw.clone()
                .with_clock(Clock::system_100mhz())
                .latency()
                .total_ns()
        );
    }

    // The five-qubit design report (Table III shape).
    let report = DesignReport::from_design(
        &[
            ("Q1,4,5".to_string(), system.discriminator(0).hardware(), 3),
            ("Q2,3".to_string(), system.discriminator(1).hardware(), 2),
        ],
        samples,
    );
    println!("\n{report}");

    // Bit-accuracy sign-off: fixed-point vs float decisions over the
    // whole held-out set.
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut overflows = 0usize;
    for s in 0..system.test_data().len() {
        let shot = system.test_data().shot(s);
        for qb in 0..5 {
            let t = &shot.traces[qb];
            let float_state = system.discriminator(qb).measure(&t.i, &t.q);
            let detail = system.discriminator(qb).hardware().infer_detailed(&t.i, &t.q);
            agree += (float_state == detail.excited) as usize;
            overflows += detail.overflow_count;
            total += 1;
        }
    }
    println!(
        "\nbit-accuracy sign-off: {agree}/{total} decisions agree ({:.2}%), {overflows} accumulator overflows",
        100.0 * agree as f64 / total as f64
    );

    // Fidelity through the hardware path.
    println!("hardware-path fidelities: {}", system.evaluate_hw());
    Ok(())
}
