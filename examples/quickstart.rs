//! Quickstart: train a complete KLiNQ system and read out qubits.
//!
//! Run with `cargo run --release --example quickstart [smoke|quick|full]`.
//! Defaults to the smoke scale so it finishes in seconds.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem};

fn main() -> Result<(), KlinqError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    let config = match scale.as_str() {
        "smoke" => ExperimentConfig::smoke(),
        "quick" => ExperimentConfig::quick(),
        "full" => ExperimentConfig::full(),
        other => {
            eprintln!("unknown scale '{other}', using smoke");
            ExperimentConfig::smoke()
        }
    };

    println!("Training the five-qubit KLiNQ system at scale '{scale}' …");
    let start = std::time::Instant::now();
    let system = KlinqSystem::train(&config)?;
    println!("  trained in {:.1}s", start.elapsed().as_secs_f32());

    // Aggregate fidelities on the held-out set.
    let report = system.evaluate();
    println!("\nPer-qubit assignment fidelity (float path):");
    println!("  {report}");
    let teachers = system.evaluate_teachers();
    println!("Teacher (Baseline FNN) fidelities:");
    println!("  {teachers}");

    // The FPGA datapath gives the same answers in Q16.16.
    let hw = system.evaluate_hw();
    println!("Bit-accurate FPGA datapath:");
    println!("  {hw}");

    // Read a single qubit from one shot — the independent-readout API.
    let shot = system.test_data().shot(0);
    for qb in 0..5 {
        let t = &shot.traces[qb];
        let state = system.measure(qb, &t.i, &t.q);
        let prepared = shot.prepared[qb];
        println!(
            "qubit {}: prepared |{}⟩, read |{}⟩ {}",
            qb + 1,
            prepared as u8,
            state as u8,
            if state == prepared { "✓" } else { "✗" }
        );
    }

    // Model sizes: the paper's headline compression.
    let d = system.discriminator(0);
    println!(
        "\nstudent for qubit 1: {} parameters ({} ); teacher: {} parameters",
        d.student().net.num_params(),
        d.student().net,
        system.teachers()[0].net().num_params(),
    );
    Ok(())
}
