//! Serving: load (or train and save) a KLiNQ system as a model artifact,
//! front it with the micro-batching `ReadoutServer`, and fire concurrent
//! clients at it.
//!
//! Run with `cargo run --release --example serving [float|hardware]`.
//! The first run trains the smoke-scale system and saves the artifact to
//! the target directory; later runs load it in milliseconds — the
//! deployable-discriminator workflow of the paper.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{Backend, KlinqError, KlinqSystem};
use klinq::serve::{ReadoutServer, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), KlinqError> {
    let backend = match std::env::args().nth(1).as_deref() {
        Some("hardware") | Some("hw") => Backend::Hardware,
        _ => Backend::Float,
    };

    // Load the trained system if an artifact exists, otherwise train and
    // save one: the artifact is bitwise-equivalent to the trained system.
    let path = std::env::temp_dir().join("klinq-serving-example.json");
    let system = match KlinqSystem::load(&path) {
        Ok(system) => {
            println!("loaded model artifact {}", path.display());
            system
        }
        Err(_) => {
            println!("no artifact yet — training the smoke-scale system …");
            let start = Instant::now();
            let system = KlinqSystem::train(&ExperimentConfig::smoke())?;
            println!("  trained in {:.1}s", start.elapsed().as_secs_f32());
            system.save(&path)?;
            println!("  saved artifact to {}", path.display());
            system
        }
    };

    let shots = system.test_data().shots().to_vec();
    let n_shots = shots.len();
    println!("serving {n_shots} shots on the {backend} backend …");

    let server = ReadoutServer::start(
        Arc::new(system),
        ServeConfig {
            backend,
            max_batch_shots: n_shots,
            max_linger: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );

    // Four concurrent clients, several rounds each: requests coalesce
    // into micro-batches on the server.
    let clients = 4;
    let rounds = 8;
    let start = Instant::now();
    std::thread::scope(|scope| {
        let per_client = n_shots.div_ceil(clients);
        for chunk in shots.chunks(per_client) {
            let client = server.client();
            scope.spawn(move || {
                for _ in 0..rounds {
                    let states = client
                        .classify_shots(chunk.to_vec())
                        .expect("server alive");
                    assert_eq!(states.len(), chunk.len());
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let stats = server.shutdown();
    let throughput = stats.shots as f64 / elapsed;
    println!(
        "served {} shots in {} requests over {} micro-batches \
         (mean batch {:.0} shots, largest {})",
        stats.shots,
        stats.requests,
        stats.batches,
        stats.mean_batch_shots(),
        stats.largest_batch,
    );
    println!("achieved throughput: {:.0} shots/s", throughput);
    Ok(())
}
