//! Joint vs independent readout: measuring the crosstalk penalty.
//!
//! The paper's Discussion explains why independent readout gives up
//! fidelity: frequency-multiplexed crosstalk couples the qubits, and a
//! per-qubit discriminator cannot see its neighbours to cancel the
//! interference. A joint five-qubit network can — which is why the
//! synchronous Baseline FNN tops Table I's footnotes (F5Q 0.912) while
//! being useless for mid-circuit measurement. This example trains both
//! schemes on identical data and prints the gap, qubit by qubit.
//!
//! Run with `cargo run --release --example crosstalk_compensation [smoke|quick]`.

use klinq::core::experiments::{joint_readout, ExperimentConfig};
use klinq::core::{KlinqError, KlinqSystem};

fn main() -> Result<(), KlinqError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    let config = match scale.as_str() {
        "quick" => ExperimentConfig::quick(),
        _ => ExperimentConfig::smoke(),
    };
    println!("Training the independent KLiNQ system at scale '{scale}' …");
    let system = KlinqSystem::train(&config)?;
    println!("Training the joint five-qubit comparator on the same data …");
    let cmp = joint_readout::run_with_system(&system, &config)?;
    println!("\n{cmp}\n");

    // The crosstalk-heavy qubit is where the joint network earns its keep.
    let q2_gap = cmp.joint_per_qubit[1] - cmp.independent_per_qubit[1];
    println!(
        "qubit 2 (crosstalk-dominated): joint {:+.3} over the independent baseline",
        q2_gap
    );
    println!(
        "trade-off: the joint network needs all five traces at once — no mid-circuit measurement."
    );
    if scale == "smoke" {
        println!(
            "(note: the 1500-input joint network is data-starved at smoke scale; run with \
             'quick' to see it lead overall, as in the paper's footnotes.)"
        );
    }
    Ok(())
}
