//! Live recalibration under drift: detect a degrading readout chain
//! from the serving stack's own drift monitor, distill a candidate
//! model while traffic keeps flowing, audition it on a canary lane,
//! and promote it with a zero-downtime blue/green hot swap.
//!
//! Run with `cargo run --release --example live_recalibration`. The
//! first run trains the smoke-scale system and caches it; later runs
//! load it in milliseconds. The scenario then plays out four acts
//! against ONE continuously running `ReadoutServer`:
//!
//! 1. **Healthy baseline** — a calibration pass (shots whose prepared
//!    states are known) feeds the per-qubit running fidelity/confusion
//!    estimates in `ServeStats`.
//! 2. **Drift** — the "fridge" degrades: extra Gaussian noise rides on
//!    every trace (`klinq_sim::noise`), scaled per qubit off the
//!    device's calibrated σ. The analytic matched-filter model
//!    (`predict_mf_fidelity`) says what to expect, and the live
//!    calibration lane confirms it without stopping the server.
//! 3. **Canary** — a candidate re-distilled from the cached teachers at
//!    a shorter integration window (the paper's duration/fidelity
//!    trade) is staged on a canary lane: a fraction of micro-batches
//!    answer from the candidate while the primary shadows them, feeding
//!    a divergence report.
//! 4. **Promotion** — the canary is hot-swapped to primary between
//!    micro-batches; in-flight requests are never mixed across model
//!    versions.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem};
use klinq::serve::{ReadoutServer, ServeConfig, ServeStats};
use klinq::sim::device::NUM_QUBITS;
use klinq::sim::noise::GaussianSource;
use klinq::sim::{predict_mf_fidelity, FiveQubitDevice, QubitCalibration, Shot, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much the noise floor rises in act 2: σ → DRIFT_FACTOR · σ.
const DRIFT_FACTOR: f64 = 1.8;

/// Canary fraction: half of all micro-batches audition the candidate.
const CANARY_FRACTION: f64 = 0.5;

fn main() -> Result<(), KlinqError> {
    // The serving layer has its own typed error; an example that fails
    // surfaces it through the core error's I/O-ish string variant.
    let serve = |e: klinq::serve::ServeError| KlinqError::Io(format!("serve: {e}"));

    // ── Act 0: deploy ────────────────────────────────────────────────
    let path = std::env::temp_dir().join("klinq-live-recal-system.json");
    let primary = match KlinqSystem::load(&path) {
        Ok(sys) => {
            println!("loaded cached system {}", path.display());
            Arc::new(sys)
        }
        Err(_) => {
            println!("no cached system yet — training the smoke-scale system …");
            let start = Instant::now();
            let sys = KlinqSystem::train(&ExperimentConfig::smoke())?;
            println!("  trained in {:.1}s", start.elapsed().as_secs_f32());
            sys.save(&path)?;
            Arc::new(sys)
        }
    };
    let config = primary.config().clone();
    let sim_config = SimConfig::with_duration_ns(config.duration_ns);
    let design_samples = primary.test_data().samples();
    let clean_shots = primary.test_data().shots().to_vec();

    let server = ReadoutServer::start(
        Arc::clone(&primary),
        ServeConfig {
            max_linger: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    println!(
        "serving model v{} ({} shots per calibration pass, {design_samples} samples/channel)\n",
        server.model_version(),
        clean_shots.len(),
    );

    // ── Act 1: healthy baseline ──────────────────────────────────────
    // Calibration shots carry their prepared states as ground truth;
    // serving them feeds the running fidelity/confusion estimates.
    let before_healthy = server.stats();
    client.classify_calibration_shots(clean_shots.clone()).map_err(serve)?;
    let healthy = server.stats();
    println!("act 1 — healthy calibration pass:");
    print_lane(&before_healthy, &healthy);

    // ── Act 2: the fridge drifts ─────────────────────────────────────
    // Raise each qubit's noise floor to DRIFT_FACTOR·σ by adding an
    // independent Gaussian component: σ_extra = σ·√(k²−1) on top of the
    // already-present σ gives a total of k·σ.
    let device = FiveQubitDevice::paper();
    let mut noise = GaussianSource::new(StdRng::seed_from_u64(2025));
    let drifted_shots: Vec<Shot> = clean_shots
        .iter()
        .map(|shot| {
            let mut shot = shot.clone();
            for (qb, trace) in shot.traces.iter_mut().enumerate() {
                let sigma_extra =
                    device.qubit(qb).noise_sigma * (DRIFT_FACTOR * DRIFT_FACTOR - 1.0).sqrt();
                noise.add_noise(&mut trace.i, sigma_extra);
                noise.add_noise(&mut trace.q, sigma_extra);
            }
            shot
        })
        .collect();

    // What the matched-filter physics model predicts the drift costs.
    println!("act 2 — noise floor rises to {DRIFT_FACTOR}×σ; matched-filter prediction:");
    for qb in 0..NUM_QUBITS {
        let calib = device.qubit(qb);
        let interference = device.crosstalk_interference(qb, &sim_config);
        let was = predict_mf_fidelity(calib, &sim_config, &interference);
        let drifted_calib = QubitCalibration {
            noise_sigma: calib.noise_sigma * DRIFT_FACTOR,
            ..*calib
        };
        let now = predict_mf_fidelity(&drifted_calib, &sim_config, &interference);
        println!("  qb{qb}: predicted fidelity {was:.4} -> {now:.4}");
    }

    // And what the live drift monitor actually observes.
    let before_drift = server.stats();
    client.classify_calibration_shots(drifted_shots.clone()).map_err(serve)?;
    let after_drift = server.stats();
    println!("drifted calibration pass, as seen by the running server:");
    print_lane(&before_drift, &after_drift);
    let mut alarmed = false;
    for qb in 0..NUM_QUBITS {
        let was = lane_fidelity(&before_healthy, &healthy, qb);
        let now = lane_fidelity(&before_drift, &after_drift, qb);
        if now < was - 0.01 {
            println!("  ALARM qb{qb}: fidelity {was:.4} -> {now:.4}");
            alarmed = true;
        }
    }
    if !alarmed {
        println!("  (drift below alarm threshold on every qubit this seed)");
    }
    println!();

    // ── Act 3: canary a re-distilled candidate ───────────────────────
    // The operational response: re-distill students from the cached
    // teachers — cheap next to a full retrain — at a shorter
    // integration window (the paper's Table II duration trade) and
    // stage the rebuilt system as a canary while traffic keeps flowing.
    let keep = design_samples * 3 / 4;
    println!("act 3 — re-distilling candidate at {keep}/{design_samples} samples …");
    let start = Instant::now();
    let candidate = Arc::new(primary.with_students(primary.students_at(keep)?, keep)?);
    println!("  candidate ready in {:.1}s", start.elapsed().as_secs_f32());

    let before_canary = server.stats();
    server.stage_canary(Arc::clone(&candidate), CANARY_FRACTION).map_err(serve)?;
    for _ in 0..4 {
        // Production traffic (classified, not scored) plus a trickle of
        // calibration shots — the operator's usual mix.
        client.classify_shots(drifted_shots.clone()).map_err(serve)?;
        client.classify_calibration_shots(drifted_shots[..32].to_vec()).map_err(serve)?;
    }
    let canary = server.stats();
    let audition_shots = canary.canary_shots - before_canary.canary_shots;
    println!(
        "  canary auditioned {audition_shots} shots; divergence from primary: {}",
        canary
            .canary_divergence()
            .map_or("n/a".to_string(), |d| format!("{:.2}%", d * 100.0)),
    );

    // ── Act 4: promote ───────────────────────────────────────────────
    let v = server.promote_canary().map_err(serve)?;
    println!("act 4 — canary promoted: now serving model v{v}");
    let before_promoted = server.stats();
    client.classify_calibration_shots(drifted_shots).map_err(serve)?;
    let promoted = server.stats();
    println!("post-promotion calibration pass:");
    print_lane(&before_promoted, &promoted);

    let stats = server.shutdown();
    println!(
        "\nserved {} shots in {} requests over {} micro-batches; \
         {} model swap(s), final version v{}",
        stats.shots, stats.requests, stats.batches, stats.model_swaps, stats.model_version,
    );
    Ok(())
}

/// Per-qubit assignment fidelity over one calibration window (the
/// counter delta between two [`ServeStats`] snapshots).
fn lane_fidelity(before: &ServeStats, after: &ServeStats, qb: usize) -> f64 {
    let shots = (after.calib_shots - before.calib_shots) as f64;
    let errors = (after.calib_false_excited[qb] - before.calib_false_excited[qb])
        + (after.calib_false_ground[qb] - before.calib_false_ground[qb]);
    1.0 - errors as f64 / shots
}

/// Prints one calibration window: per-qubit fidelity and confusion.
fn print_lane(before: &ServeStats, after: &ServeStats) {
    for qb in 0..NUM_QUBITS {
        let shots = after.calib_shots - before.calib_shots;
        let fe = after.calib_false_excited[qb] - before.calib_false_excited[qb];
        let fg = after.calib_false_ground[qb] - before.calib_false_ground[qb];
        let prep_excited = after.calib_prepared_excited[qb] - before.calib_prepared_excited[qb];
        let prep_ground = shots - prep_excited;
        println!(
            "  qb{qb}: fidelity {:.4}  P(1|0) {:.4}  P(0|1) {:.4}",
            lane_fidelity(before, after, qb),
            fe as f64 / prep_ground.max(1) as f64,
            fg as f64 / prep_excited.max(1) as f64,
        );
    }
}
