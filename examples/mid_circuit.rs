//! Mid-circuit measurement with feed-forward control.
//!
//! The paper's motivation for per-qubit independent discriminators is
//! quantum error correction: an ancilla must be measured *mid-circuit*,
//! without waiting to read every qubit, and the outcome must steer the
//! next operation within the coherence window. This example emulates that
//! loop:
//!
//! 1. prepare an "ancilla" (qubit 3) in a data-dependent state,
//! 2. read it independently from a shortened trace (faster feedback),
//! 3. branch: apply a simulated correction when the ancilla reports |1⟩,
//! 4. verify the corrected logical outcome.
//!
//! Run with `cargo run --release --example mid_circuit`.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem};

/// The ancilla qubit index (0-based; qubit 4 in paper numbering).
const ANCILLA: usize = 3;
/// Shortened readout for faster feedback: 70 % of the trace.
const FEEDBACK_FRACTION: f64 = 0.7;

fn main() -> Result<(), KlinqError> {
    println!("Training the readout system (smoke scale) …");
    let system = KlinqSystem::train(&ExperimentConfig::smoke())?;
    let data = system.test_data();
    let cut = ((data.samples() as f64) * FEEDBACK_FRACTION) as usize;
    let latency = system.discriminator(ANCILLA).hardware().latency();
    println!(
        "ancilla discriminator: {} (FPGA latency: {latency})",
        system.discriminator(ANCILLA).student().net
    );

    // Emulate a feedback experiment over many shots: whenever the ancilla
    // is read as |1⟩, the controller "applies a correction" — here that
    // simply means we expect the syndrome to have been caught.
    let mut corrections = 0usize;
    let mut missed_syndromes = 0usize;
    let mut false_triggers = 0usize;
    let shots = data.len();
    for s in 0..shots {
        let shot = data.shot(s);
        let t = &shot.traces[ANCILLA];
        // Mid-circuit: only the first `cut` samples exist yet.
        let syndrome = system
            .discriminator(ANCILLA)
            .measure(&t.i[..cut], &t.q[..cut]);
        match (syndrome, shot.prepared[ANCILLA]) {
            (true, true) => corrections += 1,
            (false, true) => missed_syndromes += 1,
            (true, false) => false_triggers += 1,
            (false, false) => {}
        }
    }
    let excited_shots = data
        .shots()
        .iter()
        .filter(|s| s.prepared[ANCILLA])
        .count();
    println!(
        "\nover {shots} shots ({} with a syndrome):",
        excited_shots
    );
    println!("  corrections applied:   {corrections}");
    println!("  syndromes missed:      {missed_syndromes}");
    println!("  false triggers:        {false_triggers}");
    println!(
        "  feedback readout used {cut}/{} samples ({:.0} ns of trace)",
        data.samples(),
        cut as f64 * data.config().sample_period_ns
    );

    // Crucially, the other qubits were never read — independent readout.
    // Read one of them now, later in the "circuit", from its full trace.
    let shot = data.shot(0);
    let t = &shot.traces[0];
    let late = system.measure(0, &t.i, &t.q);
    println!(
        "\nlate measurement of qubit 1 (full trace): |{}⟩ (prepared |{}⟩)",
        late as u8, shot.prepared[0] as u8
    );
    Ok(())
}
