//! Serving at scale: a two-device sharded fleet deployed from one model
//! bundle, fronted by the reactor-based TCP wire protocol, with
//! priority lanes and request pipelining.
//!
//! Run with `cargo run --release --example sharded_serving`. The first
//! run trains the smoke-scale system and saves a two-device bundle;
//! later runs load the fleet in milliseconds. The example then serves
//! out-of-process-style clients over localhost TCP — bulk throughput
//! requests on both devices, a latency-priority request that skips the
//! linger window, and a single pipelined connection with many requests
//! in flight at once — and prints the fleet's coalescing stats plus the
//! reactor's connection accounting.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{persist, KlinqError, KlinqSystem};
use klinq::serve::{Priority, ServeConfig, ShardedReadoutServer, WireClient, WireServer};
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn main() -> Result<(), KlinqError> {
    let io_err = |e: std::io::Error| KlinqError::Io(e.to_string());

    // Deploy the fleet from a single multi-device bundle artifact (here
    // the same trained system on both devices; a real fridge would
    // bundle one trained system per chip).
    let path = std::env::temp_dir().join("klinq-sharded-example-bundle.json");
    let fleet = match ShardedReadoutServer::load_bundle(&path, serve_config()) {
        Ok(fleet) => {
            println!("loaded fleet bundle {}", path.display());
            fleet
        }
        Err(_) => {
            println!("no bundle yet — training the smoke-scale system …");
            let start = Instant::now();
            let system = KlinqSystem::train(&ExperimentConfig::smoke())?;
            println!("  trained in {:.1}s", start.elapsed().as_secs_f32());
            persist::save_device_bundle(&path, &[&system, &system])?;
            println!("  saved 2-device bundle to {}", path.display());
            ShardedReadoutServer::load_bundle(&path, serve_config())?
        }
    };
    println!("fleet serves {} devices", fleet.devices());

    // The wire front end: out-of-process clients reach the same
    // coalescing path over localhost TCP.
    let server = WireServer::start(
        &fleet,
        TcpListener::bind("127.0.0.1:0").map_err(io_err)?,
    )
    .map_err(io_err)?;
    let addr = server.local_addr();
    println!("wire protocol listening on {addr}");

    let shots = {
        // Any trained system regenerates the same held-out shots; use
        // one loaded from the bundle via a throwaway load.
        let system = persist::load_device_bundle(&path)?.remove(0);
        system.test_data().shots().to_vec()
    };
    let n_shots = shots.len();

    // Two bulk clients per device, plus one latency-lane client.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for device in 0..fleet.devices() as u16 {
            let shots = &shots;
            scope.spawn(move || {
                let mut client =
                    WireClient::connect(addr, device).expect("connect to wire server");
                for round in 0..4 {
                    let states = client.classify_shots(shots).expect("fleet alive");
                    assert_eq!(states.len(), shots.len());
                    if round == 0 {
                        println!(
                            "  device {device}: first shot reads {:?}",
                            states[0]
                        );
                    }
                }
            });
        }
        // A mid-circuit-style latency request: closes its micro-batch
        // immediately instead of lingering.
        let shot = shots[0].clone();
        scope.spawn(move || {
            let mut client = WireClient::connect(addr, 0).expect("connect to wire server");
            let t0 = Instant::now();
            let states = client
                .classify_shots_with_priority(Priority::Latency, std::slice::from_ref(&shot))
                .expect("fleet alive");
            println!(
                "  latency lane: shot read as {:?} in {:.1} ms",
                states[0],
                t0.elapsed().as_secs_f64() * 1e3
            );
        });
    });

    // Request pipelining: ONE connection keeps many requests in flight
    // (each frame carries a request id; responses may complete out of
    // order and are matched back by id), so a single client thread can
    // saturate the coalescer without opening a connection per request.
    let mut pipelined = WireClient::connect(addr, 0).map_err(|e| KlinqError::Io(e.to_string()))?;
    let mut submitted = 0usize;
    for chunk in shots.chunks(64) {
        pipelined
            .submit_with_priority(Priority::Throughput, chunk)
            .expect("fleet alive");
        submitted += 1;
    }
    let mut answered = 0usize;
    while pipelined.in_flight() > 0 {
        let (id, result) = pipelined.recv_response().expect("fleet alive");
        let states = result.expect("served");
        assert!(!states.is_empty(), "request {id} answered empty");
        answered += 1;
    }
    println!(
        "  pipelined {submitted} requests over one connection, {answered} responses matched by id"
    );
    drop(pipelined);
    let elapsed = start.elapsed().as_secs_f64();

    let wire_stats = server.stats();
    println!(
        "reactor accepted {} connections (peak {} open)",
        wire_stats.wire_accepted, wire_stats.wire_peak_open,
    );
    server.shutdown();
    let stats = fleet.shutdown();
    println!(
        "served {} shots in {} requests over {} micro-batches \
         (largest {}, {} expedited by the priority lane, {} shed)",
        stats.shots, stats.requests, stats.batches, stats.largest_batch,
        stats.expedited_batches, stats.shed,
    );
    println!(
        "achieved throughput: {:.0} shots/s over the wire ({} shots per bulk request)",
        stats.shots as f64 / elapsed,
        n_shots,
    );
    Ok(())
}

/// Shared per-shard serving knobs: whole-test-set batches with a small
/// linger so concurrent bulk clients coalesce.
fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch_shots: 4096,
        max_linger: Duration::from_millis(2),
        ..ServeConfig::default()
    }
}
