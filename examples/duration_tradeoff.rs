//! Per-qubit readout-duration optimization (the Table II workflow).
//!
//! Longer readout integrates more signal, but excited qubits decay during
//! the measurement — so each qubit has an optimal trace duration. The
//! paper exploits this by running each qubit at its own optimum, raising
//! the five-qubit geometric-mean fidelity above the single-duration value.
//!
//! Run with `cargo run --release --example duration_tradeoff [smoke|quick]`.

use klinq::core::experiments::ExperimentConfig;
use klinq::core::{KlinqError, KlinqSystem};

fn main() -> Result<(), KlinqError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    let config = match scale.as_str() {
        "quick" => ExperimentConfig::quick(),
        _ => ExperimentConfig::smoke(),
    };
    println!("Training at scale '{scale}' …");
    let system = KlinqSystem::train(&config)?;
    let period = system.test_data().config().sample_period_ns;
    let max_samples = system.test_data().samples();

    // Sweep durations down to FNN-B's minimum input (100 samples per
    // channel — its averaging front end emits 100 points).
    let min_frac = 100.0 / max_samples as f64;
    let fractions: Vec<f64> = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        .into_iter()
        .filter(|&f| f >= min_frac)
        .collect();
    let mut best = [(0.0f64, 0.0f64); 5]; // (fidelity, duration_ns)
    println!("\n{:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}", "duration", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q");
    for frac in fractions {
        let samples = ((max_samples as f64) * frac) as usize;
        let report = system.evaluate_retrained_at(samples)?;
        let dur = samples as f64 * period;
        print!("{:>8.0}ns", dur);
        for (qb, &f) in report.per_qubit().iter().enumerate() {
            print!(" {f:>7.3}");
            if f > best[qb].0 {
                best[qb] = (f, dur);
            }
        }
        println!(" {:>7.3}", report.geometric_mean());
    }

    let best_f5q = klinq::dsp::geometric_mean(
        &best.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
    );
    println!("\nper-qubit optima:");
    for (qb, (f, dur)) in best.iter().enumerate() {
        println!("  qubit {}: {:.3} at {:.0} ns", qb + 1, f, dur);
    }
    println!("mixed-duration F5Q: {best_f5q:.3} (paper reaches 0.906 this way)");
    Ok(())
}
