//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` work-alike. No `syn`/`quote`: the container environment has no
//! registry access, so the input item is parsed directly from the token
//! stream. Supports exactly the shapes this workspace uses:
//!
//! - structs with named fields,
//! - tuple structs (a 1-field newtype serializes as its inner value,
//!   matching real serde; wider tuples serialize as arrays),
//! - enums with unit and struct variants (externally tagged).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// `(variant, None)` = unit variant, `(variant, Some(fields))` = struct
/// variant with named fields.
type Variant = (String, Option<Vec<String>>);

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Advances past outer attributes (`#[...]`) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Extracts field names from the token stream of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        // Commas inside parens/brackets are hidden inside Groups already.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_enum_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple enum variant `{name}` is not supported by the vendored serde derive"
                ));
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => return Err(format!("expected `,` after variant `{name}`, got {other}")),
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde derive"
            ));
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Shape::Enum {
                    name,
                    variants: parse_enum_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut n = 0usize;
                let mut angle_depth = 0i32;
                let mut saw_any = false;
                for t in &toks {
                    saw_any = true;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => n += 1,
                        _ => {}
                    }
                }
                // Trailing comma would overcount; the codebase doesn't use
                // them in tuple structs, so `fields = commas + 1`.
                if saw_any {
                    n + 1
                } else {
                    0
                }
            };
            if arity == 0 {
                Ok(Shape::UnitStruct { name })
            } else {
                Ok(Shape::TupleStruct { name, arity })
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
        None if kind == "struct" => Ok(Shape::UnitStruct { name }),
        other => Err(format!("unsupported item body: {other:?}")),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let entries: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let entries: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({v:?}), \
                                  ::serde::Value::Object(::std::vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::obj_get(v, {f:?}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         ::serde::arr_get(v, {k}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::obj_get(inner, {f:?}, {name:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected a string or single-key object for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
