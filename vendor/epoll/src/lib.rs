//! Thin, safe shim over the Linux `epoll`/`eventfd` syscalls.
//!
//! The build environment has no reachable crates registry (see
//! `vendor/README.md`), so instead of `libc`/`mio` this crate binds the
//! four C library entry points the serving reactor actually needs via
//! direct `extern "C"` declarations, and wraps them in a minimal safe
//! API: [`Epoll`] (create/register/wait) and [`EventFd`] (a cross-thread
//! wakeup the reactor parks on).
//!
//! **Linux only.** On every other target the crate compiles to nothing
//! but [`SUPPORTED`]` = false`; consumers keep a portable readiness
//! fallback (non-blocking sockets plus a bounded poll loop) behind a
//! `cfg`, so the workspace still builds and tests where epoll does not
//! exist.

#![deny(unsafe_op_in_unsafe_fn)]

/// Whether this target has the epoll API at all.
#[cfg(target_os = "linux")]
pub const SUPPORTED: bool = true;
/// Whether this target has the epoll API at all.
#[cfg(not(target_os = "linux"))]
pub const SUPPORTED: bool = false;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // `struct epoll_event` carries `__attribute__((packed))` on x86_64
    // (and only there) in the kernel uapi headers; mirroring the exact
    // layout is what makes the direct bindings sound.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// One readiness report from [`Epoll::wait`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Event {
        /// The token the file descriptor was registered with.
        pub token: u64,
        /// Reading will not block (or there is a hangup/error to read).
        pub readable: bool,
        /// Writing will not block.
        pub writable: bool,
    }

    /// An epoll instance: a set of registered file descriptors plus a
    /// blocking [`wait`](Self::wait) for readiness on any of them.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates the epoll instance (`EPOLL_CLOEXEC`).
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno.
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointers involved; the returned fd is owned here.
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            let mut ev = RawEvent {
                events: if readable { EPOLLIN } else { 0 } | if writable { EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` under `token` for the given interests
        /// (level-triggered).
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno (e.g. `EEXIST`).
        pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        /// Changes an existing registration's interests.
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno (e.g. `ENOENT`).
        pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        /// Removes `fd` from the set.
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Blocks until at least one registered fd is ready (or the
        /// timeout passes), filling `out` with the readiness reports.
        /// `None` waits indefinitely; `EINTR` is retried internally.
        ///
        /// An error or hangup condition is reported as `readable`: the
        /// consumer's next read observes the EOF/error and handles it on
        /// its normal path.
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 100 µs timeout does not busy-spin as 0 ms.
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(t.subsec_nanos() % 1_000_000 != 0 && t.as_millis() < i32::MAX as u128),
            };
            let mut raw = [RawEvent { events: 0, data: 0 }; 64];
            let n = loop {
                // SAFETY: `raw` is a valid writable buffer of 64 events.
                let ret = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
                if ret >= 0 {
                    break ret as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is an fd this value owns exclusively.
            unsafe { close(self.fd) };
        }
    }

    /// A kernel event counter used as a cross-thread wakeup: any thread
    /// [`notify`](Self::notify)s, the reactor registers the fd in its
    /// [`Epoll`] set and [`drain`](Self::drain)s on wake.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// Creates the eventfd (non-blocking, cloexec).
        ///
        /// # Errors
        ///
        /// Propagates the syscall's errno.
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointers involved; the returned fd is owned here.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Self { fd })
        }

        /// The raw fd, for registration in an [`Epoll`] set.
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Adds 1 to the counter, waking any epoll waiter. Infallible by
        /// design: the only failure mode of interest (`EAGAIN` when the
        /// counter is saturated) still leaves the waiter wakeable.
        pub fn notify(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a valid u64.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Resets the counter so the next wait blocks again.
        pub fn drain(&self) {
            let mut buf = 0u64;
            // SAFETY: reads 8 bytes into a valid u64; EAGAIN (already
            // drained) is fine.
            unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is an fd this value owns exclusively.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::{Epoll, Event, EventFd};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn eventfd_wakes_an_epoll_wait_across_threads() {
        let ep = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(wake.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a bounded wait times out empty.
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        let notifier = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            notifier.notify();
        });
        ep.wait(&mut events, None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        wake.drain();
        // Drained: the next bounded wait is empty again (level-triggered).
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn socket_readability_and_interest_changes_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, true, false).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no bytes yet");
        client.write_all(b"ping").unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        // An idle socket is immediately writable once EPOLLOUT interest
        // is added.
        ep.modify(server.as_raw_fd(), 42, true, true).unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));
        ep.delete(server.as_raw_fd()).unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "deregistered fd must not report");
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 1, true, false).unwrap();
        drop(client);
        let mut events = Vec::new();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "hangup must surface as readable so the consumer's read sees EOF"
        );
    }
}
