//! Minimal, dependency-free work-alike of the `rand` 0.8 API surface this
//! workspace uses: `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle`.
//!
//! Streams are deterministic for a given seed but do NOT match the real
//! `rand` crate's `StdRng` (ChaCha12); everything in this repository only
//! relies on determinism and statistical quality, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full RNG state (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! The standard RNG.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality 256-bit generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from the generator's raw bits (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` without modulo bias (Lemire's method).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry (vanishingly rare for small n).
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; fold back.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice utilities.

    use super::{uniform_u64_below, Rng};

    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let k = rng.gen_range(0usize..=4);
            assert!(k <= 4);
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
