//! Minimal JSON reader/writer over the vendored `serde` work-alike's
//! [`Value`] data model. Implements exactly the workspace's call surface:
//! [`to_string`], [`to_string_pretty`], [`from_str`].

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// Returns an error if the value contains a non-finite float (JSON has no
/// representation for NaN or infinity).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize a non-finite float to JSON"));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // always with a `.0` or exponent — valid JSON either way.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (n, item) in items.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (n, (key, item)) in pairs.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's ASCII-only identifiers; map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Float(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::Str("x\"y".into())]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1e-7, 123456.789, -0.0, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
