//! Minimal, dependency-free work-alike of the `criterion` API surface this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Throughput` and `Bencher::iter`.
//!
//! Behavior mirrors real criterion's mode selection:
//!
//! - run with `--bench` (what `cargo bench` passes) → measure and print a
//!   per-iteration time (median of several sampling rounds);
//! - run with `--test`, or without `--bench` (what `cargo test` does for
//!   `harness = false` bench targets) → execute each benchmark exactly
//!   once as a smoke test;
//! - a positional argument filters benchmarks by substring match on
//!   `group/name`, like real criterion.
//!
//! In bench mode every measurement is also recorded and, at exit
//! (`criterion_main!` calls [`write_json_report`]), written to
//! `BENCH_<bench>.json` in the working directory — a machine-readable
//! `{id, ns_per_iter, per_sec}` listing that CI uploads so the perf
//! trajectory is tracked across PRs.
//!
//! Statistical analysis, plotting and baselines are intentionally out of
//! scope — the numbers printed here are for trajectory tracking, not
//! publication.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark in bench mode.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(120);
/// Sampling rounds used for the reported median.
const ROUNDS: usize = 5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Each benchmark body runs exactly once (cargo test / --test).
    Test,
    /// Timed runs (cargo bench).
    Bench,
}

/// Benchmark identifier: `name` or `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The harness entry point handed to benchmark functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Criterion {
    /// Builds from the process arguments (see module docs for the modes).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let has_bench = args.iter().any(|a| a == "--bench");
        let has_test = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .filter(|s| !s.is_empty());
        let mode = if has_bench && !has_test {
            Mode::Bench
        } else {
            Mode::Test
        };
        if filter.is_some() {
            FILTERED_RUN.store(true, Ordering::Relaxed);
        }
        Criterion { mode, filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mode = self.mode;
        if self.selected(&id.id) {
            run_one(&id.id, mode, None, f);
        }
        self
    }

    fn selected(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    /// Whether this run measures (`--bench`) rather than smoke-tests.
    ///
    /// Benches with a hand-rolled measurement loop (e.g. latency
    /// percentiles, which [`Bencher::iter`]'s single median cannot
    /// express) branch on this: measure and
    /// [`record_measurement`] in bench mode, run the body once in test
    /// mode.
    pub fn is_bench(&self) -> bool {
        self.mode == Mode::Bench
    }

    /// Whether `full_name` passes this run's name filter (public for
    /// hand-rolled measurement loops, which bypass
    /// [`Criterion::bench_function`] and so must apply the filter
    /// themselves).
    pub fn is_selected(&self, full_name: &str) -> bool {
        self.selected(full_name)
    }
}

/// Records an externally measured result into the JSON report, exactly
/// as if a [`Bencher::iter`] run had produced it: `ns_per_iter` is the
/// figure of merit (a per-iteration time, or a latency percentile for
/// `*_p50`/`*_p99`-style ids), `per_sec` an optional derived throughput.
/// The current [`set_worker_threads`] declaration is stamped on.
///
/// Callers are responsible for only recording in bench mode (see
/// [`Criterion::is_bench`]) and for applying the name filter (see
/// [`Criterion::is_selected`]); measurements recorded in test mode would
/// pollute the trajectory file with unmeasured one-shot timings.
pub fn record_measurement(id: &str, ns_per_iter: f64, per_sec: Option<(f64, &str)>) {
    let mut line = format!("{id:<50} time: {}", format_ns(ns_per_iter));
    if let Some((rate, label)) = per_sec {
        line.push_str(&format!("  thrpt: {}", format_rate(rate, label)));
    }
    println!("{line}");
    let workers = WORKER_THREADS.load(Ordering::Relaxed);
    RESULTS.lock().expect("bench results poisoned").push(BenchRecord {
        id: id.to_string(),
        ns_per_iter,
        per_sec: per_sec.map(|(rate, label)| (rate, label.to_string())),
        worker_threads: (workers > 0).then_some(workers),
    });
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.selected(&full) {
            run_one(&full, self.criterion.mode, self.throughput, f);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// One measured benchmark, for the JSON report.
#[derive(Clone)]
struct BenchRecord {
    id: String,
    ns_per_iter: f64,
    /// Derived throughput: `(units per second, unit label)`.
    per_sec: Option<(f64, String)>,
    /// Worker-pool size the measurement ran with (see
    /// [`set_worker_threads`]); `None` when the bench never declared it.
    worker_threads: Option<usize>,
}

/// Bench-mode measurements accumulated for [`write_json_report`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Worker-pool size stamped onto subsequently recorded measurements
/// (0 = undeclared). Throughput figures from containers with different
/// core counts are not comparable, so the report carries the pool size
/// per entry and consumers (e.g. `tools/benchdiff`) only compare entries
/// whose pool sizes match.
static WORKER_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Declares the worker-pool size (e.g. `rayon::current_num_threads()`)
/// that subsequent measurements in this process run with; every record
/// written after this call carries it as `worker_threads` in the JSON
/// report. Benches call this once at the top of their first group.
pub fn set_worker_threads(n: usize) {
    WORKER_THREADS.store(n, Ordering::Relaxed);
}

/// Whether a name filter restricted this run (set by
/// [`Criterion::from_args`]); a filtered run must not replace whole
/// groups in the report, since sibling benchmarks were skipped, not
/// deleted.
static FILTERED_RUN: AtomicBool = AtomicBool::new(false);

/// Writes `BENCH_<bench>.json` with every measurement recorded so far.
///
/// Called by `criterion_main!` after all groups have run; a no-op in test
/// mode (nothing recorded) or when nothing matched the filter.
pub fn write_json_report() {
    write_json_report_as(&bench_binary_name());
}

/// Like [`write_json_report`], but under an explicit report name — for
/// bench binaries whose results belong in another target's trajectory
/// file (e.g. the `serving` bench contributing to `BENCH_inference.json`
/// so serving and direct-engine throughput are compared side by side).
///
/// Merge semantics: if `BENCH_<name>.json` already exists, results from
/// benchmark *groups* this run did not touch are kept, while every group
/// it did measure is replaced wholesale — so successive bench binaries
/// accumulate into one file without clobbering each other, and renamed
/// or deleted targets inside a re-measured group don't linger as stale
/// entries. (A group abandoned by every binary still has to be pruned by
/// deleting the file once.) When a name filter restricted the run, only
/// the ids actually re-measured are replaced — the skipped siblings'
/// entries survive a partial run.
pub fn write_json_report_as(name: &str) {
    write_report(name, false);
}

/// Like [`write_json_report_as`], but replaces only the exact ids this
/// run measured, leaving every other entry alone — for a bench binary
/// whose ids live inside a *group another binary owns* (e.g. the `soak`
/// bench contributing `serving/soak_*` alongside the `serving` bench's
/// `serving/*` entries). The default group-wholesale replacement would
/// clobber the sibling binary's entries whenever this one runs on its
/// own. The flip side of id-granular merging: ids this binary renames
/// or drops linger in the file until pruned by hand (or until the
/// group's owning binary re-measures the group).
pub fn write_json_report_as_shared(name: &str) {
    write_report(name, true);
}

fn write_report(name: &str, shared_group: bool) {
    let new_records = RESULTS.lock().expect("bench results poisoned");
    if new_records.is_empty() {
        return;
    }
    let path = report_dir().join(format!("BENCH_{name}.json"));
    let mut records = read_existing_records(&path);
    let ids_only = shared_group || FILTERED_RUN.load(Ordering::Relaxed);
    retain_unreplaced(&mut records, &new_records, ids_only);
    records.extend(new_records.iter().map(|r| BenchRecord {
        id: r.id.clone(),
        ns_per_iter: r.ns_per_iter,
        per_sec: r.per_sec.clone(),
        worker_threads: r.worker_threads,
    }));
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n  \"results\": [\n", escape_json(name)));
    for (idx, r) in records.iter().enumerate() {
        let sep = if idx + 1 < records.len() { "," } else { "" };
        let per_sec = match &r.per_sec {
            Some((rate, unit)) => {
                format!("{rate:.1}, \"unit\": \"{unit}\"")
            }
            None => "null".to_string(),
        };
        let workers = match r.worker_threads {
            Some(n) => format!(", \"worker_threads\": {n}"),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_sec\": {}{workers}}}{sep}\n",
            escape_json(&r.id),
            r.ns_per_iter,
            per_sec
        ));
    }
    json.push_str("  ]\n}\n");
    // Tmp-file + atomic rename: a crash mid-write (CI cancellation) must
    // not truncate the accumulated trajectory file, which the next merge
    // would silently treat as empty.
    let tmp = path.with_extension("json.tmp");
    let result = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &path));
    match result {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Drops the existing records a fresh run replaces: the exact measured
/// ids when `ids_only` (filtered runs, shared-group binaries), otherwise
/// every record in any benchmark *group* this run touched — "group"
/// being the id prefix before the first `/` (the whole id for ungrouped
/// benchmarks) — so renamed or deleted targets inside a re-measured
/// group don't linger as stale entries.
fn retain_unreplaced(records: &mut Vec<BenchRecord>, new_records: &[BenchRecord], ids_only: bool) {
    let group_of = |id: &str| id.split('/').next().unwrap_or(id).to_string();
    if ids_only {
        let measured_ids: Vec<&str> = new_records.iter().map(|r| r.id.as_str()).collect();
        records.retain(|old| !measured_ids.contains(&old.id.as_str()));
    } else {
        let measured_groups: Vec<String> =
            new_records.iter().map(|r| group_of(&r.id)).collect();
        records.retain(|old| !measured_groups.contains(&group_of(&old.id)));
    }
}

/// Parses the records of an existing report so a new run can merge into
/// it. Any read or parse failure just means starting fresh.
fn read_existing_records(path: &std::path::Path) -> Vec<BenchRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    let Some(results) = value.get("results").and_then(|r| r.as_array()) else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|entry| {
            let id = entry.get("id")?.as_str()?.to_string();
            let ns_per_iter = entry.get("ns_per_iter")?.as_f64()?;
            let per_sec = match (
                entry.get("per_sec").and_then(|v| v.as_f64()),
                entry.get("unit").and_then(|v| v.as_str()),
            ) {
                (Some(rate), Some(unit)) => Some((rate, unit.to_string())),
                _ => None,
            };
            let worker_threads = entry
                .get("worker_threads")
                .and_then(|v| v.as_f64())
                .map(|n| n as usize);
            Some(BenchRecord {
                id,
                ns_per_iter,
                per_sec,
                worker_threads,
            })
        })
        .collect()
}

/// Where reports land: the workspace root (nearest ancestor of the
/// working directory holding a `Cargo.lock`), so `cargo bench` drops the
/// JSON in one predictable place regardless of which package ran. Falls
/// back to the working directory itself.
fn report_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    cwd.ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(cwd)
}

/// The bench target's name: the executable stem with cargo's trailing
/// `-<hash>` stripped (e.g. `inference-0a1b…` → `inference`).
fn bench_binary_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty() && hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem,
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn run_one<F: FnMut(&mut Bencher)>(
    full_name: &str,
    mode: Mode,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        mode,
        per_iter: Vec::new(),
    };
    match mode {
        Mode::Test => {
            f(&mut bencher);
            println!("{full_name}: ok (test mode, 1 iteration)");
        }
        Mode::Bench => {
            f(&mut bencher);
            if bencher.per_iter.is_empty() {
                println!("{full_name}: no measurement recorded");
                return;
            }
            bencher
                .per_iter
                .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median = bencher.per_iter[bencher.per_iter.len() / 2];
            let mut line = format!("{full_name:<50} time: {}", format_ns(median));
            let mut per_sec = None;
            if let Some(t) = throughput {
                let (units, label) = match t {
                    Throughput::Elements(n) => (n as f64, "elem/s"),
                    Throughput::Bytes(n) => (n as f64, "B/s"),
                };
                if median > 0.0 {
                    let rate = units / (median * 1e-9);
                    per_sec = Some((rate, label.to_string()));
                    line.push_str(&format!("  thrpt: {}", format_rate(rate, label)));
                }
            }
            println!("{line}");
            let workers = WORKER_THREADS.load(Ordering::Relaxed);
            RESULTS.lock().expect("bench results poisoned").push(BenchRecord {
                id: full_name.to_string(),
                ns_per_iter: median,
                per_sec,
                worker_threads: (workers > 0).then_some(workers),
            });
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64, label: &str) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M{label}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{label}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {label}")
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    mode: Mode,
    /// Nanoseconds per iteration, one entry per sampling round.
    per_iter: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(f());
            }
            Mode::Bench => {
                // Warm up and find an iteration count that fills the
                // target sample time.
                std::hint::black_box(f());
                let mut iters: u64 = 1;
                let per_iter_estimate = loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
                        break elapsed.as_nanos() as f64 / iters as f64;
                    }
                    let scale = TARGET_SAMPLE_TIME.as_nanos() as f64
                        / elapsed.as_nanos().max(1) as f64;
                    iters = ((iters as f64 * scale * 1.2) as u64).clamp(iters + 1, 1 << 30);
                };
                let _ = per_iter_estimate;
                for _ in 0..ROUNDS {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    self.per_iter
                        .push(start.elapsed().as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

/// Re-export point used by some criterion consumers; `std::hint::black_box`
/// is the canonical spelling in this workspace.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(31).id, "31");
        assert_eq!(BenchmarkId::new("dot", 201).id, "dot/201");
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: None,
        };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn existing_reports_parse_for_merging() {
        let dir = std::env::temp_dir().join("criterion_workalike_merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(
            &path,
            r#"{
  "schema": 1,
  "bench": "sample",
  "results": [
    {"id": "group/with_thrpt", "ns_per_iter": 1200.5, "per_sec": 832986.3, "unit": "elem/s", "worker_threads": 4},
    {"id": "group/no_thrpt", "ns_per_iter": 42.0, "per_sec": null}
  ]
}"#,
        )
        .unwrap();
        let records = read_existing_records(&path);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "group/with_thrpt");
        assert_eq!(records[0].per_sec.as_ref().unwrap().1, "elem/s");
        assert_eq!(records[0].worker_threads, Some(4));
        assert!(records[1].per_sec.is_none());
        assert_eq!(records[1].worker_threads, None);
        // Unreadable/missing files merge as empty.
        assert!(read_existing_records(&dir.join("missing.json")).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_group_merges_by_id_not_group() {
        let rec = |id: &str, ns: f64| BenchRecord {
            id: id.to_string(),
            ns_per_iter: ns,
            per_sec: None,
            worker_threads: None,
        };
        let existing = vec![
            rec("serving/wire_testset", 1.0),
            rec("serving/soak_steady_p99", 2.0),
            rec("inference/teacher", 3.0),
        ];
        let fresh = vec![rec("serving/soak_steady_p99", 4.0)];
        // Group-wholesale (the default): the whole `serving` group goes,
        // including the sibling binary's entry.
        let mut group_merge = existing.clone();
        retain_unreplaced(&mut group_merge, &fresh, false);
        assert_eq!(
            group_merge.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["inference/teacher"]
        );
        // Shared-group: only the exact re-measured id is replaced.
        let mut id_merge = existing;
        retain_unreplaced(&mut id_merge, &fresh, true);
        assert_eq!(
            id_merge.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["serving/wire_testset", "inference/teacher"]
        );
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("other".into()),
        };
        let mut runs = 0;
        c.bench_function("this_one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
