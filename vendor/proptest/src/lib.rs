//! Minimal, dependency-free (vendored-`rand`-only) work-alike of the
//! `proptest` API surface this workspace uses:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! - [`Strategy`] with `.prop_map`, range strategies, tuple strategies,
//!   `any::<T>()`, `prop::bool::ANY` and `prop::collection::vec`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! seed (fully deterministic runs), and shrinking is simpler — every
//! *integer* draw (integer range strategies and `vec` lengths) is
//! binary-searched toward its lower bound, with each candidate actually
//! re-executed so only genuinely failing shrinks survive; float and
//! `any::<T>()` draws are reported as generated, unshrunk.
//!
//! Set `KLINQ_PROPTEST_SEED=<u64>` to vary the generated cases without
//! editing this crate: the value perturbs every property's RNG stream
//! (unset, streams are bit-identical to the historical fixed seed).
//! On a property failure the harness prints the active seed and, when
//! the override was set, the exact variable assignment to reproduce it —
//! shrinking never changes the replay handle, because candidates replay
//! from a snapshot of the failing case's RNG state, not from a new seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::sync::OnceLock;

/// The `KLINQ_PROPTEST_SEED` environment override, parsed once.
/// `None` when unset or unparsable (an unparsable value is reported the
/// first time rather than silently ignored).
fn env_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        let raw = std::env::var("KLINQ_PROPTEST_SEED").ok()?;
        match raw.trim().parse::<u64>() {
            Ok(seed) => Some(seed),
            Err(_) => {
                eprintln!(
                    "proptest: ignoring unparsable KLINQ_PROPTEST_SEED={raw:?} (expected a u64)"
                );
                None
            }
        }
    })
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies (deterministic; see module docs).
pub type TestRng = StdRng;

pub(crate) mod shrink {
    //! The shrink observer: a thread-local tap on every integer draw.
    //!
    //! Integer strategies report each generated value through
    //! [`observe`] together with the draw's bounds. During a normal
    //! case the observer just records the sequence; during a shrink
    //! replay it substitutes candidate values (clamped to the draw's
    //! own bounds, so a misaligned override can never produce an
    //! out-of-range value) while still letting the caller consume the
    //! RNG normally — record and replay therefore see identical
    //! downstream streams.

    use std::cell::RefCell;

    /// One observed integer draw: lower bound and the value actually
    /// used (post-substitution). `i128` covers every integer type the
    /// range strategies implement, `u64`/`usize` included.
    pub(crate) type Draw = (i128, i128);

    struct State {
        overrides: Vec<Option<i128>>,
        index: usize,
        seen: Vec<Draw>,
    }

    thread_local! {
        static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
    }

    /// Arms the observer for one case execution. `overrides[i]`, when
    /// set and in-bounds for draw `i`, replaces that draw's value.
    pub(crate) fn begin(overrides: Vec<Option<i128>>) {
        STATE.with(|s| {
            *s.borrow_mut() = Some(State {
                overrides,
                index: 0,
                seen: Vec::new(),
            });
        });
    }

    /// Disarms the observer and returns the draws the case actually
    /// used, in draw order.
    pub(crate) fn end() -> Vec<Draw> {
        STATE.with(|s| s.borrow_mut().take().map_or_else(Vec::new, |st| st.seen))
    }

    /// Reports one integer draw: `generated` was sampled from
    /// `lo..=hi`. Returns the value the strategy must hand out — the
    /// generated one, or the active override for this draw position.
    pub(crate) fn observe(lo: i128, hi: i128, generated: i128) -> i128 {
        STATE.with(|s| {
            let mut borrow = s.borrow_mut();
            let Some(st) = borrow.as_mut() else {
                // Strategy used outside `run_property` — no recording.
                return generated;
            };
            let v = match st.overrides.get(st.index).copied().flatten() {
                Some(o) if (lo..=hi).contains(&o) => o,
                _ => generated,
            };
            st.seen.push((lo, v));
            st.index += 1;
            v
        })
    }
}

/// Creates the deterministic per-test RNG.
pub fn test_rng(test_name: &str) -> TestRng {
    // Vary the stream per test so sibling properties don't see identical
    // inputs, while keeping runs reproducible.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Mix the env override in ONLY when set: unset runs stay
    // bit-identical to the historical fixed streams (statistical floors
    // elsewhere in the workspace are tuned against them).
    if let Some(seed) = env_seed() {
        h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

// Integer draws report through the shrink observer (always *after*
// sampling, so record and replay consume the RNG identically).
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let v = rng.gen_range(self.clone());
                shrink::observe(self.start as i128, self.end as i128 - 1, v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let v = rng.gen_range(self.clone());
                shrink::observe(*self.start() as i128, *self.end() as i128, v as i128) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);
impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $u as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8: u8, i16: u16, i32: u32, i64: u64, u8: u8, u16: u16, u32: u32, u64: u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats over a wide dynamic range (no NaN/inf, which real
        // proptest also excludes by default).
        let mag = rng.gen_range(-60.0f32..60.0);
        let sign = if rng.gen::<u64>() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<u64>() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

/// Strategy form of [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec length range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)` work-alike.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            // The length is an integer draw like any other: shrinking a
            // failing case tries shorter vectors first.
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            let len = crate::shrink::observe(
                self.size.lo as i128,
                self.size.hi_inclusive as i128,
                len as i128,
            ) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy behind `prop::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Ceiling on shrink-candidate re-executions per failing property. A
/// full binary search costs at most 127 replays per draw, so this
/// bounds shrinking of pathological many-draw cases without ever
/// cutting short a typical one.
const MAX_SHRINK_REPLAYS: u32 = 512;

/// Runs `cases` generated inputs through a property closure.
///
/// The closure returns `false` to signal a rejected case (`prop_assume!`);
/// assertion failures panic directly with context from the macros below.
/// A failing case is shrunk (binary search over the recorded integer
/// draws) before the panic is re-raised.
pub fn run_property<F: FnMut(&mut TestRng) -> bool>(cfg: ProptestConfig, name: &str, mut case: F) {
    let mut rng = test_rng(name);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (cfg.cases as u64) * 64;
    while accepted < cfg.cases {
        // A failing case panics inside the closure; catch it just long
        // enough to report the active seed (the repro handle — without
        // it a failure under a varied seed cannot be replayed) and to
        // shrink it, then let a panic continue to fail the test
        // normally. The RNG snapshot lets shrink candidates replay this
        // exact case.
        let case_start = rng.clone();
        shrink::begin(Vec::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        let draws = shrink::end();
        match outcome {
            Ok(true) => accepted += 1,
            Ok(false) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many rejected cases ({rejected}) — \
                     prop_assume! filter is too strict"
                );
            }
            Err(panic) => {
                match env_seed() {
                    Some(seed) => eprintln!(
                        "property `{name}` failed on case {accepted} under \
                         KLINQ_PROPTEST_SEED={seed}; set that variable to reproduce"
                    ),
                    None => eprintln!(
                        "property `{name}` failed on case {accepted} under the default \
                         fixed seed (KLINQ_PROPTEST_SEED unset); rerunning reproduces it"
                    ),
                }
                shrink_failure(name, &mut case, &case_start, draws, panic);
            }
        }
    }
}

/// Replays one case from `start` with the given draw overrides; returns
/// whether it failed (panicked) and the draws it actually used.
///
/// A case rejected by `prop_assume!` counts as *not failing*: nothing
/// can be concluded from it, so the search backs away.
fn replay_case<F: FnMut(&mut TestRng) -> bool>(
    case: &mut F,
    start: &TestRng,
    overrides: Vec<Option<i128>>,
) -> (bool, Vec<shrink::Draw>) {
    let mut rng = start.clone();
    shrink::begin(overrides);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
    let seen = shrink::end();
    (outcome.is_err(), seen)
}

/// Shrinks a failing case and re-raises its panic. Never returns.
///
/// Each recorded integer draw is binary-searched toward its lower
/// bound, **with every candidate actually re-executed** from the same
/// RNG snapshot — a shrink is only kept when the smaller case still
/// fails, so the reported minimum is a genuine failure, never an
/// extrapolation. Substituting one draw can change how many draws the
/// case makes (a shorter vec generates fewer elements); the search
/// always adopts the draw sequence the failing candidate *actually*
/// used, so the reported values match the final failing execution even
/// through such shifts.
fn shrink_failure<F: FnMut(&mut TestRng) -> bool>(
    name: &str,
    case: &mut F,
    start: &TestRng,
    original: Vec<shrink::Draw>,
    panic: Box<dyn std::any::Any + Send>,
) -> ! {
    if original.is_empty() {
        // No integer draws to shrink (float-only property).
        std::panic::resume_unwind(panic);
    }
    let mut current = original.clone();
    let mut replays = 0u32;
    let mut position = 0usize;
    while position < current.len() && replays < MAX_SHRINK_REPLAYS {
        let (lo, failing) = current[position];
        let mut low = lo;
        let mut high = failing;
        while low < high && replays < MAX_SHRINK_REPLAYS {
            let mid = low + (high - low) / 2;
            let mut overrides: Vec<Option<i128>> =
                current.iter().map(|&(_, v)| Some(v)).collect();
            overrides[position] = Some(mid);
            replays += 1;
            let (failed, seen) = replay_case(case, start, overrides);
            if failed {
                current = seen;
                high = mid;
                if position >= current.len() {
                    break;
                }
            } else {
                low = mid + 1;
            }
        }
        position += 1;
    }
    if current == original {
        eprintln!(
            "property `{name}`: failing case is already minimal over its integer draws {:?}",
            current.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
    } else {
        eprintln!(
            "property `{name}`: shrunk integer draws {:?} -> {:?} ({replays} replays)",
            original.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            current.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
    }
    // Fail the test with the *minimal* case's own panic, so the
    // assertion message on screen matches the draws reported above. A
    // shrunk case going flaky on the confirmation run falls back to the
    // original panic rather than passing a failing property.
    let overrides = current.iter().map(|&(_, v)| Some(v)).collect();
    let mut rng = start.clone();
    shrink::begin(overrides);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
    shrink::end();
    match outcome {
        Err(minimal_panic) => std::panic::resume_unwind(minimal_panic),
        Ok(_) => std::panic::resume_unwind(panic),
    }
}

/// Work-alike of `proptest!`: expands each property into a `#[test]` that
/// samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    // The bool-returning closure lets `prop_assume!` reject
                    // the case with `return false` without leaving the test.
                    let mut __proptest_case = move || -> bool {
                        { $body }
                        true
                    };
                    __proptest_case()
                });
            }
        )*
    };
}

/// `prop_assert!` — panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!` — panics on inequality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `prop_assert_ne!` — panics on equality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// `prop_assume!` — skips the current case when the precondition fails.
///
/// Expands to `return false` and therefore only works inside a
/// [`proptest!`] body (whose cases run in a bool-returning closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (-10.0f64..10.0, 0.5f64..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_map_work((a, b) in pair().prop_map(|(x, s)| (x * s, s))) {
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!(a.abs() <= 20.0);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f32..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn bool_any_generates(b in prop::bool::ANY) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    /// Drives `run_property` against a deliberately failing property
    /// and returns the inputs of the confirmation run — the minimal
    /// failing case the shrinker settled on (it is always the last
    /// execution before the panic is re-raised).
    fn shrunk_failure_inputs<T: Clone + 'static>(
        name: &str,
        mut case: impl FnMut(&mut crate::TestRng) -> T,
        fails: impl Fn(&T) -> bool,
    ) -> T {
        let last = std::cell::RefCell::new(None);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_property(ProptestConfig::with_cases(64), name, |rng| {
                let value = case(rng);
                *last.borrow_mut() = Some(value.clone());
                assert!(!fails(&value), "injected property failure");
                true
            });
        }));
        assert!(outcome.is_err(), "the property was built to fail");
        last.into_inner().expect("the failing property ran at least once")
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        // Fails for every x >= 137: the binary search must land exactly
        // on the smallest failing value, not merely a smaller one.
        let minimal =
            shrunk_failure_inputs("shrink_int", |rng| (137u64..100_000).generate(rng), |_| true);
        assert_eq!(minimal, 137);
        let minimal = shrunk_failure_inputs(
            "shrink_int_threshold",
            |rng| (0i32..100_000).generate(rng),
            |&x| x >= 1234,
        );
        assert_eq!(minimal, 1234);
    }

    #[test]
    fn vec_length_failures_shrink_to_the_shortest_failing_vec() {
        // Fails whenever the vec holds >= 5 elements; the shrinker must
        // shorten the length draw to exactly 5 (re-executing each
        // candidate, since a shorter vec consumes fewer element draws).
        let minimal = shrunk_failure_inputs(
            "shrink_vec_len",
            |rng| prop::collection::vec(0u32..10, 0..40).generate(rng),
            |v| v.len() >= 5,
        );
        assert_eq!(minimal.len(), 5);
    }

    #[test]
    fn joint_failures_shrink_each_draw_against_the_others() {
        // Fails when a + b >= 100. Shrinking a alone stops where the
        // case stops failing, then b shrinks against the updated a: the
        // result must sit exactly on the failure boundary.
        let (a, b) = shrunk_failure_inputs(
            "shrink_joint",
            |rng| (0u32..1000, 0u32..1000).generate(rng),
            |&(a, b)| a + b >= 100,
        );
        assert_eq!(a + b, 100);
    }

    #[test]
    fn passing_properties_never_invoke_the_shrinker() {
        // The observer must be transparent for green properties: this
        // exercises the record path (every case arms/disarms it) and
        // would hang or panic if `end()` mismatched `begin()`.
        crate::run_property(ProptestConfig::with_cases(32), "no_shrink_needed", |rng| {
            let v = prop::collection::vec(0u8..255, 1..8).generate(rng);
            assert!(!v.is_empty());
            true
        });
    }

    #[test]
    fn rng_streams_are_deterministic_and_per_test() {
        use rand::Rng;
        // Same name → same stream (reproducible runs under whatever
        // seed, env-overridden or not, this process started with);
        // different names → different streams (sibling properties must
        // not see identical inputs).
        let mut first = crate::test_rng("alpha");
        let a: Vec<u64> = (0..4).map(|_| first.gen()).collect();
        let mut second = crate::test_rng("alpha");
        let b: Vec<u64> = (0..4).map(|_| second.gen()).collect();
        assert_eq!(a, b);
        let mut other = crate::test_rng("beta");
        let c: Vec<u64> = (0..4).map(|_| other.gen()).collect();
        assert_ne!(a, c);
    }
}
