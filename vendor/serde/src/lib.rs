//! Minimal, dependency-free work-alike of the `serde` API surface this
//! workspace uses. The build environment has no reachable crates registry
//! (see `vendor/README.md`), so serialization is implemented against a
//! single JSON-shaped [`Value`] data model instead of serde's generic
//! serializer architecture:
//!
//! - [`Serialize`] renders a type into a [`Value`] tree;
//! - [`Deserialize`] rebuilds a type from a [`Value`] tree;
//! - `#[derive(Serialize, Deserialize)]` comes from the vendored
//!   `serde_derive` proc macro and covers named structs, tuple structs
//!   (newtypes collapse to their inner value) and externally tagged enums
//!   with unit/struct variants.
//!
//! The `serde_json` vendored crate layers JSON text on top of [`Value`].

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the universal data model every
/// `Serialize`/`Deserialize` impl goes through.
///
/// Object keys preserve insertion order (a plain `Vec` of pairs), which
/// keeps serialized output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view: any of the three number representations as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Fetches a required field from an object value (derive-macro helper).
pub fn obj_get<'v>(v: &'v Value, key: &str, ty: &str) -> Result<&'v Value, Error> {
    match v.get(key) {
        Some(field) => Ok(field),
        None => match v.as_object() {
            Some(_) => Err(Error::custom(format!("missing field `{key}` for {ty}"))),
            None => Err(Error::custom(format!("expected an object for {ty}"))),
        },
    }
}

/// Fetches a required index from an array value (derive-macro helper).
pub fn arr_get<'v>(v: &'v Value, idx: usize, ty: &str) -> Result<&'v Value, Error> {
    v.as_array()
        .ok_or_else(|| Error::custom(format!("expected an array for {ty}")))?
        .get(idx)
        .ok_or_else(|| Error::custom(format!("missing element {idx} for {ty}")))
}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected an integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected an unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom("expected a number for f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected a number for f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected a tuple array"))?;
                Ok(($($t::from_value(
                    arr.get($idx).ok_or_else(|| Error::custom("tuple too short"))?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
