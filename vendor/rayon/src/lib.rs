//! Minimal, dependency-free work-alike of the `rayon` parallel-slice API
//! this workspace uses (`par_chunks(..)`, `par_chunks_mut(..)`,
//! `par_iter()`, with `map`/`enumerate`/`for_each`/`collect`), built on a
//! **persistent worker pool**.
//!
//! The pool is created lazily on the first parallel call (`OnceLock`) and
//! holds `available_parallelism() - 1` workers parked on a shared channel;
//! the submitting thread always participates in its own job, so a
//! single-core host runs everything inline with zero scheduling overhead
//! and no job ever waits for a thread to spawn. Work is distributed via an
//! atomic task counter; results are written back **lock-free** into
//! write-once slots owned by task index, so output ordering is
//! deterministic and identical to the sequential ordering regardless of
//! thread scheduling.
//!
//! A panic inside a task is caught on the worker, the remaining tasks
//! still drain (workers stay alive for the next job), and the panic is
//! re-raised on the submitting thread once the job completes. Results
//! already written when a job panics are leaked rather than dropped.

use std::any::Any;
use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A lifetime-erased `&(dyn Fn(usize) + Sync)`.
///
/// Safety contract: the pointee must outlive every call through it.
/// [`run_tasks`] guarantees this by blocking the submitting thread until
/// the job's `pending` count reaches zero, and workers never touch the
/// pointer after completing their last claimed task.
#[derive(Clone, Copy)]
struct TaskFn(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskFn {}
unsafe impl Sync for TaskFn {}

/// One parallel job: an atomic-counter work queue over `0..tasks`.
struct JobCore {
    /// Next unclaimed task index.
    next: AtomicUsize,
    tasks: usize,
    /// Tasks not yet completed (claimed-and-finished decrements this).
    pending: AtomicUsize,
    func: TaskFn,
    /// First captured panic payload; doubles as the completion-condvar
    /// guard so notify/wait cannot race.
    state: Mutex<Option<Box<dyn Any + Send>>>,
    done: Condvar,
}

impl JobCore {
    /// Claims and runs tasks until the counter is exhausted.
    fn execute(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return;
            }
            // Safety: `run_tasks` keeps the closure alive until `pending`
            // hits zero, which cannot happen before this call returns.
            let f = unsafe { &*self.func.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
            if let Err(payload) = result {
                self.state
                    .lock()
                    .expect("job state poisoned")
                    .get_or_insert(payload);
            }
            if self.pending.fetch_sub(1, Ordering::Release) == 1 {
                // Last task done: wake the submitter. Taking the lock
                // orders this notify after the waiter's check-then-wait.
                let _guard = self.state.lock().expect("job state poisoned");
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every task has completed, re-raising the first panic.
    fn wait(&self) {
        let mut guard = self.state.lock().expect("job state poisoned");
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self.done.wait(guard).expect("job state poisoned");
        }
        if let Some(payload) = guard.take() {
            drop(guard);
            std::panic::resume_unwind(payload);
        }
    }
}

/// The persistent pool: worker threads parked on a shared job channel.
struct Pool {
    injector: Mutex<Sender<Arc<JobCore>>>,
    workers: usize,
}

/// The process-wide pool, spawned lazily on the first parallel call.
/// `None` on single-core hosts (every job then runs inline on the caller).
fn pool() -> &'static Option<Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let (tx, rx) = channel::<Arc<JobCore>>();
        let rx = Arc::new(Mutex::new(rx));
        for n in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{n}"))
                .spawn(move || loop {
                    // Hold the receiver lock only while dequeueing; jobs
                    // run unlocked so idle workers can keep dequeueing.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job.execute(),
                        Err(_) => break,
                    }
                })
                .expect("failed to spawn pool worker");
        }
        Some(Pool {
            injector: Mutex::new(tx),
            workers,
        })
    })
}

/// Number of threads the pool schedules over (workers + the caller).
pub fn current_num_threads() -> usize {
    pool().as_ref().map_or(1, |p| p.workers + 1)
}

/// Runs `f(i)` for every `i in 0..tasks` across the pool, returning once
/// all tasks have completed. The calling thread always participates.
fn run_tasks(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    let helpers = pool().as_ref().map_or(0, |p| p.workers).min(tasks - 1);
    if helpers == 0 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    // Safety: erase the closure's lifetime; `wait()` below blocks until no
    // task (hence no worker) can still call through the pointer.
    let func = TaskFn(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
    });
    let job = Arc::new(JobCore {
        next: AtomicUsize::new(0),
        tasks,
        pending: AtomicUsize::new(tasks),
        func,
        state: Mutex::new(None),
        done: Condvar::new(),
    });
    {
        let pool = pool().as_ref().expect("helpers > 0 implies a pool");
        let injector = pool.injector.lock().expect("injector poisoned");
        for _ in 0..helpers {
            // Send fails only if every worker exited (process teardown);
            // the caller's own execute() below still completes the job.
            let _ = injector.send(Arc::clone(&job));
        }
    }
    job.execute();
    job.wait();
}

// ---------------------------------------------------------------------------
// Lock-free index-ordered writeback
// ---------------------------------------------------------------------------

/// Write-once result slots, one per task index. Lock-free: exclusivity
/// comes from the atomic work counter handing each index to exactly one
/// task, not from per-slot locks.
struct Slots<R> {
    cells: Vec<UnsafeCell<MaybeUninit<R>>>,
}

unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, || UnsafeCell::new(MaybeUninit::uninit()));
        Self { cells }
    }

    /// # Safety
    ///
    /// Each index must be written at most once, by the task that claimed
    /// it from the work counter.
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { (*self.cells[i].get()).write(value) };
    }

    /// # Safety
    ///
    /// Every index must have been written exactly once.
    unsafe fn into_vec(self) -> Vec<R> {
        let mut cells = ManuallyDrop::new(self.cells);
        // `UnsafeCell<MaybeUninit<R>>` and `R` have identical layouts, so
        // the buffer can be reinterpreted without copying.
        unsafe { Vec::from_raw_parts(cells.as_mut_ptr().cast::<R>(), cells.len(), cells.capacity()) }
    }
}

/// Input slots consumed by-value, one per task index (same exclusivity
/// argument as [`Slots`]).
struct ItemSlots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for ItemSlots<T> {}

impl<T> ItemSlots<T> {
    fn new(items: Vec<T>) -> Self {
        Self {
            cells: items.into_iter().map(|x| UnsafeCell::new(Some(x))).collect(),
        }
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    /// # Safety
    ///
    /// Each index must be taken at most once, by the task that claimed it.
    unsafe fn take(&self, i: usize) -> T {
        unsafe { (*self.cells[i].get()).take() }.expect("each input consumed once")
    }
}

/// Runs `f(i)` for every index in `0..tasks` on the persistent pool and
/// returns the results in index order.
fn par_map_indexed<R, F>(tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let slots = Slots::new(tasks);
    // Safety: the work counter hands each index to exactly one task, and
    // `run_tasks` re-raises panics only after all tasks finished (written
    // slots are then leaked, never double-dropped or read).
    run_tasks(tasks, &|i| unsafe { slots.write(i, f(i)) });
    unsafe { slots.into_vec() }
}

// ---------------------------------------------------------------------------
// Iterator façade
// ---------------------------------------------------------------------------

/// A lazy parallel iterator with deterministic output ordering.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Executes the pipeline and returns items in order.
    fn run(self) -> Vec<Self::Item>;

    fn map<R: Send, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Pairs every item with its index (deterministic, like the input
    /// ordering).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Runs `f` over every item in parallel, discarding results.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }

    fn collect<C: FromParallelVec<Self::Item>>(self) -> C {
        C::from_parallel_vec(self.run())
    }
}

/// Collection types buildable from an ordered parallel result.
pub trait FromParallelVec<T> {
    fn from_parallel_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_parallel_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over contiguous chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn run(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.chunk_size).collect()
    }
}

/// Parallel iterator over contiguous mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn run(self) -> Vec<&'a mut [T]> {
        self.slice.chunks_mut(self.chunk_size).collect()
    }
}

/// Parallel iterator over the elements of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// The `map` adapter — the stage that actually runs in parallel.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = ItemSlots::new(self.inner.run());
        let f = &self.f;
        // Safety: each index claimed (hence taken) exactly once.
        par_map_indexed(items.len(), |i| f(unsafe { items.take(i) }))
    }
}

/// The `enumerate` adapter.
pub struct Enumerate<I> {
    inner: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);

    fn run(self) -> Vec<(usize, I::Item)> {
        self.inner.run().into_iter().enumerate().collect()
    }
}

/// `slice.par_chunks(n)` / `slice.par_iter()` extension trait.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// `slice.par_chunks_mut(n)` extension trait.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Sets the number of threads; accepted for API compatibility. The pool
/// here is sized from `available_parallelism()`, so this is a no-op.
pub struct ThreadPoolBuilder;

pub mod prelude {
    //! One-stop import, mirroring `rayon::prelude::*`.
    pub use crate::{FromParallelVec, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_map_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let sums: Vec<u64> = data
            .par_chunks(7)
            .map(|chunk| chunk.iter().sum::<u64>())
            .collect();
        let expected: Vec<u64> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn par_iter_matches_sequential() {
        let data: Vec<i64> = (-500..500).collect();
        let doubled: Vec<i64> = data.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<i64> = data.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let data: Vec<u8> = Vec::new();
        let out: Vec<u8> = data.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Exercise many small jobs back-to-back: with a persistent pool
        // this is cheap; with per-call spawning it would thrash. The
        // assertion is on correctness — the perf shows up in benches.
        for round in 0..50u64 {
            let data: Vec<u64> = (0..64).collect();
            let out: Vec<u64> = data.par_iter().map(|&x| x + round).collect();
            assert_eq!(out[63], 63 + round);
        }
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint_chunks() {
        let mut out = vec![0usize; 100];
        out.par_chunks_mut(9)
            .enumerate()
            .for_each(|(ci, chunk)| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ci * 9 + k;
                }
            });
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn moved_items_are_consumed_once() {
        let data: Vec<String> = (0..40).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = data
            .par_chunks(3)
            .map(|chunk| chunk.iter().map(String::len).sum())
            .collect();
        let expected: Vec<usize> = data.chunks(3).map(|c| c.iter().map(String::len).sum()).collect();
        assert_eq!(lens, expected);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates_to_caller() {
        let data: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = data
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}
