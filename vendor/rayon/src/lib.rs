//! Minimal, dependency-free work-alike of the `rayon` parallel-slice API
//! this workspace uses (`par_chunks(..).map(..).collect()` and
//! `par_iter().map(..).collect()`), built on `std::thread::scope`.
//!
//! Work is distributed over `available_parallelism()` worker threads via
//! an atomic task counter; results are written back by task index, so
//! output ordering is deterministic and identical to the sequential
//! ordering regardless of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for a job of `tasks` independent tasks.
fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(tasks)
        .max(1)
}

/// Runs `f(i)` for every index in `0..tasks` on a scoped worker pool and
/// returns the results in index order.
fn par_map_indexed<R, F>(tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = worker_count(tasks);
    if workers == 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || Mutex::new(None));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// A lazy parallel iterator with deterministic output ordering.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Executes the pipeline and returns items in order.
    fn run(self) -> Vec<Self::Item>;

    fn map<R: Send, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    fn collect<C: FromParallelVec<Self::Item>>(self) -> C {
        C::from_parallel_vec(self.run())
    }
}

/// Collection types buildable from an ordered parallel result.
pub trait FromParallelVec<T> {
    fn from_parallel_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_parallel_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over contiguous chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn run(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.chunk_size).collect()
    }
}

/// Parallel iterator over the elements of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// The `map` adapter — the stage that actually runs in parallel.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    I::Item: Sync + Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.inner.run();
        let f = &self.f;
        let mut inputs: Vec<Option<I::Item>> = items.into_iter().map(Some).collect();
        let cells: Vec<Mutex<Option<I::Item>>> = inputs
            .drain(..)
            .map(Mutex::new)
            .collect();
        par_map_indexed(cells.len(), |i| {
            let item = cells[i]
                .lock()
                .expect("input slot poisoned")
                .take()
                .expect("each input consumed once");
            f(item)
        })
    }
}

/// `slice.par_chunks(n)` / `slice.par_iter()` extension trait.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Sets the number of threads; accepted for API compatibility. The pool
/// here is created per call, so this is a no-op.
pub struct ThreadPoolBuilder;

pub mod prelude {
    //! One-stop import, mirroring `rayon::prelude::*`.
    pub use crate::{FromParallelVec, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_map_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let sums: Vec<u64> = data
            .par_chunks(7)
            .map(|chunk| chunk.iter().sum::<u64>())
            .collect();
        let expected: Vec<u64> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn par_iter_matches_sequential() {
        let data: Vec<i64> = (-500..500).collect();
        let doubled: Vec<i64> = data.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<i64> = data.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let data: Vec<u8> = Vec::new();
        let out: Vec<u8> = data.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
